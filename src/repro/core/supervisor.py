"""Supervised process-pool execution: real crash/hang/poison tolerance.

The paper's characterization framework (Fig. 2) exists because
sub-guardband runs crash, hang and wedge the harness -- the supervisor,
not the benchmark, must guarantee forward progress (the system-level
frameworks of Papadimitriou et al., arXiv:2106.09975, and the Scrooge
undervolting study, arXiv:2107.00416, make the same point). This module
brings that property to our own process pool: where
:func:`repro.core.parallel.parallel_map` used to die with a raw
``BrokenProcessPool`` the moment a worker really crashed, the
:class:`SupervisedPool` keeps the study moving:

- **per-unit deadlines** -- every submitted work unit carries a
  ``unit_timeout`` deadline; a unit that is still running past it is
  treated as hung, the wedged pool is torn down (worker processes
  terminated) and the unit is deterministically re-issued;
- **bounded retries** -- every attributed failure (crash, hang, poison
  exception) charges the unit's retry budget and lands in a structured
  attempt ledger; after ``max_retries`` charged failures the unit is
  *quarantined* and reported as a typed :class:`UnitFailure` instead of
  a stack trace;
- **transparent pool rebuild** -- a worker death (``os._exit``,
  segfault, OOM kill) breaks the whole ``ProcessPoolExecutor``; the
  supervisor rebuilds it and re-issues every unit that was in flight.
  Units lost *collaterally* (they shared the pool with the one that
  died) are re-issued free of charge, so retry budgets -- and therefore
  quarantine decisions -- do not depend on the worker count;
- **crash attribution** -- when several units were in flight during a
  break, the supervisor cannot know which one killed the worker, so the
  suspects re-run one at a time (attribution mode) until the culprit
  breaks the pool alone and is charged;
- **graceful degradation** -- if the pool cannot be rebuilt, execution
  falls back to inline serial mode (injected process-level faults are
  simulated there, since a real ``os._exit`` would take down the
  supervisor itself).

Because work units are deterministic and results are collected by unit
index, a run under any real-fault schedule converges to results
bit-identical to a clean run, with quarantined units enumerated
deterministically -- the property ``tests/test_supervisor.py`` locks
down end to end.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.faults import (
    SPURIOUS_ESCALATION,
    UNIT_EXIT,
    UNIT_HANG,
    UNIT_POISON,
    WORKER_KILL,
    PoisonError,
    run_injected_real_fault,
)
from repro.errors import CampaignError, SupervisionError

#: Failure taxonomy reported by :class:`UnitFailure`.
CRASH = "crash"          #: the worker process died while running the unit
HANG = "hang"            #: the unit ran past its deadline
POISON = "poison"        #: the unit raised an exception
POOL_BROKEN = "pool-broken"  #: the pool could not be rebuilt around the unit

#: Default retry budget: a unit is quarantined after ``max_retries + 1``
#: attributed failures.
DEFAULT_MAX_RETRIES = 3

#: Default sleep of an injected hang (seconds). Kept short so plans stay
#: convergent even without a deadline: the sleeping attempt eventually
#: returns and is charged as a hang.
DEFAULT_HANG_SECONDS = 1.0


@dataclass(frozen=True)
class UnitFailure:
    """One quarantined work unit, as a typed record (not a traceback)."""

    index: int              #: position of the unit in the submitted items
    kind: str               #: one of CRASH / HANG / POISON / POOL_BROKEN
    attempts: int           #: attributed failures charged before quarantine
    detail: str = ""        #: human-readable cause (e.g. the repr of the
    #: poison exception); never a multi-frame traceback
    label: str = ""         #: caller-assigned name (campaign, task id, ...)

    def describe(self) -> str:
        name = self.label or f"unit {self.index}"
        text = f"{name}: {self.kind} after {self.attempts} attempt(s)"
        return f"{text} ({self.detail})" if self.detail else text


@dataclass(frozen=True)
class AttemptRecord:
    """One ledger entry: what happened to one submission of one unit."""

    index: int              #: unit index
    attempt: int            #: attributed attempt number at submission
    outcome: str            #: "ok", a taxonomy kind, an injected fault
    #: kind, or "pool-broken" for a collateral loss
    charged: bool = False   #: whether this outcome consumed retry budget
    detail: str = ""


@dataclass
class SupervisorStats:
    """What the supervisor actually did, for reporting and manifests."""

    attempts: int = 0            #: work-unit submissions (incl. inline)
    retries: int = 0             #: re-submissions after any kind of loss
    rebuilds: int = 0            #: pool teardown + rebuild events
    crashes: int = 0             #: attributed worker deaths
    hangs: int = 0               #: attributed deadline overruns
    poisoned: int = 0            #: attributed unit exceptions
    collateral_losses: int = 0   #: units lost to another unit's fault
    quarantined: int = 0         #: units that exhausted their budget
    degraded: bool = False       #: fell back to inline serial execution

    def as_dict(self) -> Dict[str, object]:
        return {
            "attempts": self.attempts,
            "retries": self.retries,
            "rebuilds": self.rebuilds,
            "crashes": self.crashes,
            "hangs": self.hangs,
            "poisoned": self.poisoned,
            "collateral_losses": self.collateral_losses,
            "quarantined": self.quarantined,
            "degraded": self.degraded,
        }

    def describe(self) -> str:
        text = (f"{self.attempts} attempts, {self.retries} retries, "
                f"{self.rebuilds} pool rebuilds, "
                f"{self.quarantined} quarantined")
        return text + (" [degraded to serial]" if self.degraded else "")


@dataclass(frozen=True)
class MapOutcome:
    """Everything a supervised map produced.

    ``values`` has one slot per input item, ``None`` where the unit was
    quarantined; ``failures`` enumerates the quarantined units sorted by
    index (deterministically, at any worker count).
    """

    values: Tuple
    failures: Tuple[UnitFailure, ...]
    stats: SupervisorStats
    ledger: Tuple[AttemptRecord, ...]

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass(frozen=True)
class _UnitResult:
    """Tagged envelope a worker returns instead of the bare value.

    Results are recognised by ``isinstance``, never compared by value,
    so a work unit may legitimately return *any* object -- including one
    equal to a sentinel -- without being mistaken for a doomed attempt.
    """

    ok: bool
    value: object = None
    fault: Optional[str] = None


def _supervised_unit(task):
    """Worker body: execute one unit, honouring an injected fault.

    ``directive`` is the parent-computed injected fault for this attempt
    (or ``None``): simulated losses (legacy worker kills / spurious
    escalations) return a tagged envelope; *real* process-level faults
    actually happen in this process -- ``os._exit``, a deadline-busting
    sleep, a raised poison exception -- so the supervisor's recovery
    machinery is exercised for real, not simulated.
    """
    fn, item, directive, hang_seconds = task
    if directive is not None:
        marker = run_injected_real_fault(directive, hang_seconds)
        return _UnitResult(ok=False, fault=marker)
    return _UnitResult(ok=True, value=fn(item))


class _UnitState:
    """Mutable supervision state of one work unit."""

    __slots__ = ("index", "attempt", "charged", "last_kind", "last_detail",
                 "submissions", "failure")

    def __init__(self, index: int) -> None:
        self.index = index
        self.attempt = 0        # next injected-fault attempt to consult;
        # advances on every *attributed* loss, never on collateral ones,
        # so injected schedules replay identically at any worker count
        self.charged = 0        # attributed real failures (retry budget)
        self.last_kind = ""
        self.last_detail = ""
        self.submissions = 0
        self.failure: Optional[UnitFailure] = None


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a (possibly wedged or broken) pool down, hard.

    ``shutdown(wait=False)`` alone would leave a hung worker running its
    ``time.sleep`` (or a real infinite loop) forever; terminating the
    worker processes directly reclaims them. ``_processes`` is a CPython
    implementation detail, so every touch is defensive.
    """
    try:
        processes = list((getattr(pool, "_processes", None) or {}).values())
    except Exception:
        processes = []
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    for process in processes:
        try:
            process.terminate()
        except Exception:
            pass
    for process in processes:
        try:
            process.join(timeout=2.0)
        except Exception:
            pass


class SupervisedPool:
    """A future-based process pool that guarantees forward progress.

    Parameters
    ----------
    jobs:
        Worker-process count. ``1`` executes inline (no pool); the
        returned values are identical at every count.
    unit_timeout:
        Per-unit deadline in seconds (``None`` disables hang detection).
        Must comfortably exceed a legitimate unit's runtime: a unit still
        running at its deadline is charged a hang and re-issued.
    max_retries:
        Attributed-failure budget per unit; the unit is quarantined on
        failure ``max_retries + 1``.
    serial_fallback:
        When the pool cannot be rebuilt, ``True`` (default) degrades to
        inline serial execution; ``False`` quarantines the remaining
        units as :data:`POOL_BROKEN`.

    One pool instance is reused across every retry round of a
    :meth:`map` call (and across successive calls), instead of the old
    build-and-tear-down-per-round cycle; it is only ever rebuilt when a
    worker death or hang actually breaks it.
    """

    def __init__(self, jobs: int = 1, unit_timeout: Optional[float] = None,
                 max_retries: int = DEFAULT_MAX_RETRIES,
                 serial_fallback: bool = True) -> None:
        if jobs < 1:
            raise CampaignError(f"jobs must be >= 1, got {jobs}")
        if max_retries < 0:
            raise CampaignError(f"max_retries must be >= 0, got {max_retries}")
        if unit_timeout is not None and unit_timeout <= 0:
            raise CampaignError(
                f"unit_timeout must be positive or None, got {unit_timeout}")
        self.jobs = jobs
        self.unit_timeout = unit_timeout
        self.max_retries = max_retries
        self.serial_fallback = serial_fallback
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _pool_factory(self) -> ProcessPoolExecutor:
        """Build the worker pool (overridable in tests)."""
        return ProcessPoolExecutor(max_workers=self.jobs)

    def _ensure_pool(self) -> Optional[ProcessPoolExecutor]:
        """The live pool, building one on demand; ``None`` if unbuildable."""
        if self._pool is None:
            try:
                self._pool = self._pool_factory()
            except Exception:
                self._pool = None
        return self._pool

    def _teardown(self) -> None:
        if self._pool is not None:
            _terminate_pool(self._pool)
            self._pool = None

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            try:
                self._pool.shutdown(wait=True, cancel_futures=True)
            except Exception:
                _terminate_pool(self._pool)
            self._pool = None

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Supervised map
    # ------------------------------------------------------------------
    def map(self, fn: Callable, items: Sequence,
            inject: Optional[Callable[[int, int], Optional[str]]] = None,
            hang_seconds: float = DEFAULT_HANG_SECONDS) -> MapOutcome:
        """Order-preserving supervised map.

        ``inject(index, attempt)`` (usually
        :meth:`repro.core.faults.FaultInjector.unit_fault`) supplies the
        injected fault directive for each attributed attempt of each
        unit, or ``None`` for a clean attempt. Results come back by unit
        index, so completion order never reorders downstream
        aggregation; quarantined units are enumerated in
        :attr:`MapOutcome.failures`, sorted by index.
        """
        items = list(items)
        stats = SupervisorStats()
        ledger: List[AttemptRecord] = []
        states = [_UnitState(index) for index in range(len(items))]
        results: List[object] = [None] * len(items)
        done = [False] * len(items)
        if self.jobs <= 1 or len(items) <= 1:
            self._run_inline(fn, items, list(range(len(items))), inject,
                             states, results, done, stats, ledger)
        else:
            self._run_pooled(fn, items, inject, hang_seconds,
                             states, results, done, stats, ledger)
        failures = tuple(sorted((s.failure for s in states
                                 if s.failure is not None),
                                key=lambda f: f.index))
        return MapOutcome(values=tuple(results), failures=failures,
                          stats=stats, ledger=tuple(ledger))

    # ------------------------------------------------------------------
    # Shared bookkeeping
    # ------------------------------------------------------------------
    def _charge(self, state: _UnitState, kind: str, detail: str,
                stats: SupervisorStats, ledger: List[AttemptRecord]) -> bool:
        """Charge one attributed real failure; returns True on quarantine."""
        ledger.append(AttemptRecord(state.index, state.attempt, kind,
                                    charged=True, detail=detail))
        state.attempt += 1
        state.charged += 1
        state.last_kind = kind
        state.last_detail = detail
        if kind == CRASH:
            stats.crashes += 1
        elif kind == HANG:
            stats.hangs += 1
        elif kind == POISON:
            stats.poisoned += 1
        if state.charged > self.max_retries:
            state.failure = UnitFailure(
                index=state.index, kind=kind, attempts=state.charged,
                detail=detail)
            stats.quarantined += 1
            return True
        return False

    def _free_loss(self, state: _UnitState, outcome: str,
                   ledger: List[AttemptRecord], attributed: bool) -> None:
        """Record an uncharged loss; attributed ones advance the injected
        schedule, collateral ones replay the same attempt."""
        ledger.append(AttemptRecord(state.index, state.attempt, outcome,
                                    charged=False))
        if attributed:
            state.attempt += 1

    @staticmethod
    def _classify_injected(directive: str) -> Tuple[str, str]:
        """Taxonomy kind + detail of a simulated injected real fault."""
        if directive == UNIT_EXIT:
            return CRASH, "injected worker os._exit (simulated inline)"
        if directive == UNIT_HANG:
            return HANG, "injected deadline hang (simulated inline)"
        return POISON, "injected poison exception (simulated inline)"

    # ------------------------------------------------------------------
    # Inline (serial) execution -- jobs=1 and pool-degraded mode
    # ------------------------------------------------------------------
    def _run_inline(self, fn, items, indices, inject, states, results,
                    done, stats, ledger) -> None:
        """Serial reference path, also the degradation target.

        Injected *real* faults are simulated here (an actual ``os._exit``
        would kill the supervisor itself; an actual sleep would stall
        it), but they are still charged and quarantined exactly as the
        pool observes them -- which is what keeps quarantine lists
        identical between ``jobs=1`` and any pool run.
        """
        for index in indices:
            state = states[index]
            while not done[index] and state.failure is None:
                directive = inject(index, state.attempt) if inject else None
                stats.attempts += 1
                if state.submissions > 0:
                    stats.retries += 1
                state.submissions += 1
                if directive in (WORKER_KILL, SPURIOUS_ESCALATION):
                    self._free_loss(state, directive, ledger, attributed=True)
                    continue
                if directive in (UNIT_EXIT, UNIT_HANG, UNIT_POISON):
                    kind, detail = self._classify_injected(directive)
                    self._charge(state, kind, detail, stats, ledger)
                    continue
                try:
                    value = fn(items[index])
                except Exception as exc:  # noqa: BLE001 -- typed quarantine
                    self._charge(state, POISON, repr(exc), stats, ledger)
                    continue
                results[index] = value
                done[index] = True
                ledger.append(AttemptRecord(index, state.attempt, "ok"))

    # ------------------------------------------------------------------
    # Pooled execution
    # ------------------------------------------------------------------
    def _run_pooled(self, fn, items, inject, hang_seconds,
                    states, results, done, stats, ledger) -> None:
        normal_q: Deque[int] = deque(range(len(items)))
        careful_q: Deque[int] = deque()   # suspects needing solo attribution
        in_flight: Dict[object, Tuple[int, Optional[float]]] = {}
        solo_active = False               # a known-doomed attempt runs alone

        def remaining_indices() -> List[int]:
            lost = [index for index, _ in in_flight.values()]
            queued = list(careful_q) + list(normal_q)
            return sorted(set(lost + queued))

        def degrade() -> bool:
            """Pool is gone for good: finish inline or quarantine."""
            stats.degraded = True
            leftovers = remaining_indices()
            in_flight.clear()
            careful_q.clear()
            normal_q.clear()
            if self.serial_fallback:
                self._run_inline(fn, items, leftovers, inject, states,
                                 results, done, stats, ledger)
            else:
                for index in leftovers:
                    state = states[index]
                    state.failure = UnitFailure(
                        index=index, kind=POOL_BROKEN,
                        attempts=state.charged,
                        detail="process pool could not be rebuilt")
                    stats.quarantined += 1
                    ledger.append(AttemptRecord(index, state.attempt,
                                                POOL_BROKEN, charged=False))
            return self._pool is not None

        def rebuild_after(reason_losses: List[Tuple[int, bool]]) -> bool:
            """Tear down + rebuild; re-queue lost units. Returns False when
            the pool is unrecoverable (degradation already handled)."""
            nonlocal solo_active
            solo_active = False
            stats.rebuilds += 1
            for index, attributed in reason_losses:
                if not attributed:
                    stats.collateral_losses += 1
                    self._free_loss(states[index], POOL_BROKEN, ledger,
                                    attributed=False)
            self._teardown()
            if self._ensure_pool() is None:
                degrade()
                return False
            return True

        def handle_break(suspects: List[int]) -> bool:
            """A worker died. One suspect: attribute + charge. Several:
            collateral re-issue, then solo attribution runs."""
            in_flight.clear()
            suspects = sorted(set(suspects))
            losses: List[Tuple[int, bool]] = []
            if len(suspects) == 1:
                index = suspects[0]
                quarantined = self._charge(
                    states[index], CRASH,
                    "worker process died before reporting", stats, ledger)
                if not quarantined:
                    careful_q.append(index)
            else:
                for index in suspects:
                    losses.append((index, False))
                    careful_q.append(index)
            careful = sorted(set(careful_q))
            careful_q.clear()
            careful_q.extend(careful)
            return rebuild_after(losses)

        def handle_hangs(expired: List[int], collateral: List[int]) -> bool:
            """Deadline overruns: charge the hung units, free-reissue the
            rest, and replace the wedged pool."""
            in_flight.clear()
            losses = [(index, False) for index in sorted(set(collateral))]
            for index in sorted(set(expired)):
                quarantined = self._charge(
                    states[index], HANG,
                    f"no result within {self.unit_timeout}s deadline",
                    stats, ledger)
                if not quarantined:
                    normal_q.appendleft(index)
            for index in sorted(set(collateral), reverse=True):
                normal_q.appendleft(index)
            return rebuild_after(losses)

        if self._ensure_pool() is None:
            degrade()
            return

        while normal_q or careful_q or in_flight:
            # ----------------------------------------------------- submit
            pool = self._pool
            if pool is None:
                degrade()
                return
            capacity = 1 if (careful_q or solo_active) else self.jobs
            submitted_break = False
            while (careful_q or normal_q) and len(in_flight) < capacity \
                    and not solo_active:
                queue = careful_q if careful_q else normal_q
                index = queue.popleft()
                state = states[index]
                if done[index] or state.failure is not None:
                    continue
                directive = inject(index, state.attempt) if inject else None
                goes_solo = directive == UNIT_EXIT or queue is careful_q
                if goes_solo and in_flight:
                    # Known-doomed or under-attribution attempts run alone
                    # so the coming pool break is attributable to them.
                    queue.appendleft(index)
                    break
                stats.attempts += 1
                if state.submissions > 0:
                    stats.retries += 1
                state.submissions += 1
                deadline = (time.monotonic() + self.unit_timeout
                            if self.unit_timeout is not None else None)
                task = (fn, items[index], directive, hang_seconds)
                try:
                    future = pool.submit(_supervised_unit, task)
                except (BrokenExecutor, RuntimeError):
                    queue.appendleft(index)
                    state.submissions -= 1
                    stats.attempts -= 1
                    if state.submissions > 0:
                        stats.retries -= 1
                    submitted_break = True
                    break
                in_flight[future] = (index, deadline)
                if goes_solo:
                    solo_active = True
                    break
            if submitted_break:
                if not handle_break([i for i, _ in in_flight.values()]):
                    return
                continue
            if not in_flight:
                continue

            # ------------------------------------------------------- wait
            timeout = None
            if self.unit_timeout is not None:
                deadlines = [d for _, d in in_flight.values()
                             if d is not None]
                if deadlines:
                    timeout = max(0.0, min(deadlines) - time.monotonic())
            done_futures, _ = wait(set(in_flight), timeout=timeout,
                                   return_when=FIRST_COMPLETED)

            # ---------------------------------------------------- resolve
            broken_suspects: List[int] = []
            for future in done_futures:
                if future not in in_flight:
                    continue
                index, _ = in_flight.pop(future)
                state = states[index]
                exc = future.exception()
                if exc is None:
                    envelope = future.result()
                    if isinstance(envelope, _UnitResult) and envelope.ok:
                        results[index] = envelope.value
                        done[index] = True
                        solo_active = False
                        ledger.append(AttemptRecord(index, state.attempt,
                                                    "ok"))
                    elif isinstance(envelope, _UnitResult) \
                            and envelope.fault == UNIT_HANG:
                        # The injected sleep finished under the deadline:
                        # an attributed (charged) hang all the same.
                        solo_active = False
                        self._charge(state, HANG,
                                     "injected hang returned under the "
                                     "deadline", stats, ledger)
                        if state.failure is None:
                            normal_q.append(index)
                    else:
                        # Legacy simulated loss (worker kill / spurious
                        # escalation): free re-issue, schedule advances.
                        fault = envelope.fault if isinstance(
                            envelope, _UnitResult) else WORKER_KILL
                        solo_active = False
                        self._free_loss(state, fault, ledger,
                                        attributed=True)
                        normal_q.append(index)
                elif isinstance(exc, BrokenExecutor):
                    broken_suspects.append(index)
                else:
                    solo_active = False
                    self._charge(state, POISON, repr(exc), stats, ledger)
                    if state.failure is None:
                        normal_q.append(index)
            if broken_suspects:
                suspects = broken_suspects + [i for i, _ in
                                              in_flight.values()]
                if not handle_break(suspects):
                    return
                continue

            # ------------------------------------------------- deadlines
            if self.unit_timeout is not None and in_flight:
                now = time.monotonic()
                expired = [index for _, (index, deadline) in
                           in_flight.items()
                           if deadline is not None and now >= deadline]
                if expired:
                    collateral = [index for _, (index, deadline) in
                                  in_flight.items() if index not in expired]
                    if not handle_hangs(expired, collateral):
                        return


def supervised_map(fn: Callable, items: Sequence, jobs: int = 1,
                   unit_timeout: Optional[float] = None,
                   max_retries: int = DEFAULT_MAX_RETRIES,
                   serial_fallback: bool = True,
                   inject: Optional[Callable[[int, int],
                                             Optional[str]]] = None,
                   hang_seconds: float = DEFAULT_HANG_SECONDS) -> MapOutcome:
    """One-shot supervised map: build a pool, run, tear it down.

    Returns the full :class:`MapOutcome` (values + typed failures +
    stats + ledger); callers that want a plain list with quarantine as a
    typed exception use :func:`repro.core.parallel.parallel_map`.
    """
    with SupervisedPool(jobs=jobs, unit_timeout=unit_timeout,
                        max_retries=max_retries,
                        serial_fallback=serial_fallback) as pool:
        return pool.map(fn, items, inject=inject, hang_seconds=hang_seconds)


def raise_on_failures(outcome: MapOutcome) -> MapOutcome:
    """Raise a typed :class:`~repro.errors.SupervisionError` if any unit
    was quarantined; otherwise pass the outcome through."""
    if outcome.failures:
        raise SupervisionError(outcome.failures)
    return outcome


__all__ = [
    "AttemptRecord",
    "CRASH",
    "DEFAULT_HANG_SECONDS",
    "DEFAULT_MAX_RETRIES",
    "HANG",
    "MapOutcome",
    "POISON",
    "POOL_BROKEN",
    "SupervisedPool",
    "SupervisorStats",
    "UnitFailure",
    "raise_on_failures",
    "supervised_map",
]
