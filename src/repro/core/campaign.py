"""Campaign declaration: the framework's initialization phase.

A *characterization setup* fixes the operating conditions of one run
(voltage, frequency, target cores). A *characterization run* executes
one benchmark at one setup. The set of runs executing the same benchmark
across setups is a *campaign* -- the paper's terminology, kept verbatim.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.errors import CampaignError
from repro.soc.topology import CoreId, NOMINAL_FREQ_GHZ
from repro.workloads.base import Workload


@dataclass(frozen=True)
class CharacterizationSetup:
    """Operating conditions for one run."""

    voltage_mv: float
    freq_ghz: float = NOMINAL_FREQ_GHZ
    cores: Tuple[CoreId, ...] = (CoreId(0, 0),)
    repetitions: int = 10   # the paper repeats each experiment ten times

    def __post_init__(self) -> None:
        if self.voltage_mv <= 0 or self.freq_ghz <= 0:
            raise CampaignError("voltage and frequency must be positive")
        if not self.cores:
            raise CampaignError("a setup must target at least one core")
        if len(set(c.linear for c in self.cores)) != len(self.cores):
            raise CampaignError("duplicate cores in setup")
        if self.repetitions < 1:
            raise CampaignError("repetitions must be >= 1")

    def describe(self) -> str:
        cores = ",".join(str(c.linear) for c in self.cores)
        return f"{self.voltage_mv:.0f}mV@{self.freq_ghz}GHz cores[{cores}]x{self.repetitions}"

    def stream_key(self) -> str:
        """Exact operating-point signature used for RNG substream tags.

        Unlike :meth:`describe` this keeps full float precision, so two
        setups share a random stream only when they are the same
        operating point.
        """
        cores = ",".join(str(c.linear) for c in self.cores)
        return (f"{self.voltage_mv!r}mV@{self.freq_ghz!r}GHz"
                f"[{cores}]x{self.repetitions}")


@dataclass(frozen=True)
class CharacterizationRun:
    """One benchmark at one setup -- the unit of execution."""

    workload: Workload
    setup: CharacterizationSetup
    run_id: int

    def describe(self) -> str:
        return f"run{self.run_id}:{self.workload.name}@{self.setup.describe()}"

    def stream_key(self) -> str:
        """Order-independent signature of this run's sampled behaviour.

        Excludes ``run_id`` deliberately: the id reflects declaration
        order, while the random stream must depend only on *what* is
        executed so sharded and serial executions draw identically.
        """
        return f"{self.workload.name}@{self.setup.stream_key()}"

    def global_key(self, chip_serial: str) -> str:
        """Globally unique run identity for the result pipeline.

        ``chip serial + campaign (benchmark) + run signature``: unlike
        ``run_id`` -- which restarts at every plan or Vmin search -- this
        key stays unique across campaigns and chips, so the cloud store
        can deduplicate retransmissions without ever confusing rows from
        different studies (see :class:`repro.core.transport.CloudStore`).
        """
        return f"{chip_serial}/{self.workload.name}/{self.setup.stream_key()}"


@dataclass(frozen=True)
class Campaign:
    """All runs of one benchmark across its setups."""

    workload: Workload
    runs: Tuple[CharacterizationRun, ...]

    @property
    def name(self) -> str:
        return self.workload.name

    def setups(self) -> List[CharacterizationSetup]:
        return [run.setup for run in self.runs]


class CampaignPlan:
    """The initialization phase: declare benchmarks x setups.

    Mirrors the paper's Figure 2 initialization box: "a user can declare
    a benchmark list with corresponding input datasets to run in any
    desirable characterization setup".
    """

    def __init__(self) -> None:
        self._workloads: List[Workload] = []
        self._setups: List[CharacterizationSetup] = []
        self._run_counter = itertools.count()

    def add_workload(self, workload: Workload) -> "CampaignPlan":
        if any(w.name == workload.name for w in self._workloads):
            raise CampaignError(f"duplicate workload {workload.name!r}")
        self._workloads.append(workload)
        return self

    def add_workloads(self, workloads: Iterable[Workload]) -> "CampaignPlan":
        for workload in workloads:
            self.add_workload(workload)
        return self

    def add_setup(self, setup: CharacterizationSetup) -> "CampaignPlan":
        self._setups.append(setup)
        return self

    def add_voltage_sweep(self, start_mv: float, stop_mv: float, step_mv: float,
                          freq_ghz: float = NOMINAL_FREQ_GHZ,
                          cores: Sequence[CoreId] = (CoreId(0, 0),),
                          repetitions: int = 10) -> "CampaignPlan":
        """Declare a descending voltage ladder of setups."""
        if step_mv <= 0:
            raise CampaignError("step must be positive")
        if stop_mv > start_mv:
            raise CampaignError("sweep must descend (stop <= start)")
        # Integer-indexed ladder: accumulating ``voltage -= step_mv``
        # drifts for steps with no exact binary representation (0.1 mV
        # accumulates ~1e-13 per rung), which de-duplicates CSV voltage
        # columns and RNG stream keys. ``start - i * step`` does not.
        index = 0
        while True:
            voltage = start_mv - index * step_mv
            if voltage < stop_mv - 1e-9:
                break
            self.add_setup(CharacterizationSetup(
                voltage_mv=voltage, freq_ghz=freq_ghz,
                cores=tuple(cores), repetitions=repetitions,
            ))
            index += 1
        return self

    def build(self) -> List[Campaign]:
        """Materialize the campaign list (one per benchmark)."""
        if not self._workloads:
            raise CampaignError("no workloads declared")
        if not self._setups:
            raise CampaignError("no setups declared")
        campaigns = []
        for workload in self._workloads:
            runs = tuple(
                CharacterizationRun(workload=workload, setup=setup,
                                    run_id=next(self._run_counter))
                for setup in self._setups
            )
            campaigns.append(Campaign(workload=workload, runs=runs))
        return campaigns
