"""Safe-operating-point selection (paper Section IV.D).

Turns a chip's characterization results into the operating points a
deployment would actually program: a safe PMD voltage, a safe SoC
voltage and a relaxed DRAM refresh period, each with a configurable
safety margin on top of the measured limits. The Jammer experiment's
(930 mV PMD, 920 mV SoC, 35x TREFP) point is produced this way.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.core.margins import GuardbandReport
from repro.errors import ConfigurationError
from repro.soc.corners import NOMINAL_PMD_MV, NOMINAL_SOC_MV
from repro.units import NOMINAL_REFRESH_S, RELAXED_REFRESH_S


@dataclass(frozen=True)
class SafeOperatingPoint:
    """A deployable operating point for the whole server."""

    pmd_mv: float
    soc_mv: float
    trefp_s: float
    safety_margin_mv: float

    def __post_init__(self) -> None:
        if self.pmd_mv <= 0 or self.soc_mv <= 0 or self.trefp_s <= 0:
            raise ConfigurationError("operating point values must be positive")

    @property
    def pmd_undervolt_mv(self) -> float:
        return NOMINAL_PMD_MV - self.pmd_mv

    @property
    def soc_undervolt_mv(self) -> float:
        return NOMINAL_SOC_MV - self.soc_mv

    @property
    def refresh_relaxation(self) -> float:
        return self.trefp_s / NOMINAL_REFRESH_S


def select_safe_points(report: GuardbandReport,
                       dram_all_corrected: bool,
                       safety_margin_mv: float = 10.0,
                       workload_margin_mv: float = 5.0,
                       soc_track_offset_mv: float = 10.0,
                       step_mv: float = 5.0,
                       relaxed_trefp_s: float = RELAXED_REFRESH_S) -> SafeOperatingPoint:
    """Derive the server's safe operating point from characterization.

    Policy (mirroring the paper's choices):

    - the PMD rail target is the chip's intrinsic worst-case limit --
      the dI/dt virus Vmin (measured as in Figure 7) -- plus
      ``safety_margin_mv``. The virus is a pathological stimulus no
      deployed workload reaches, so this is already conservative; the
      rail is additionally cross-checked against the highest measured
      *workload* Vmin plus ``workload_margin_mv`` and takes whichever is
      higher. On the paper's TTT part this lands at 930 mV;
    - the SoC rail tracks the PMD rail minus ``soc_track_offset_mv``
      (the paper deploys 930/920);
    - the refresh period is relaxed to ``relaxed_trefp_s`` only when the
      DRAM characterization showed every manifested error corrected by
      ECC; otherwise it stays nominal.
    """
    if safety_margin_mv < 0 or soc_track_offset_mv < 0 or workload_margin_mv < 0:
        raise ConfigurationError("margins cannot be negative")
    if step_mv <= 0:
        raise ConfigurationError("regulator step must be positive")
    workload_target = report.max_vmin_mv + workload_margin_mv
    if report.virus_margin_mv is not None:
        virus_vmin = report.nominal_mv - report.virus_margin_mv
        target = max(virus_vmin + safety_margin_mv, workload_target)
    else:
        target = report.max_vmin_mv + safety_margin_mv
    snapped = _ceil_to_step(target, step_mv)
    pmd_mv = min(snapped, report.nominal_mv)
    soc_mv = min(pmd_mv - soc_track_offset_mv, NOMINAL_SOC_MV)
    trefp = relaxed_trefp_s if dram_all_corrected else NOMINAL_REFRESH_S
    return SafeOperatingPoint(
        pmd_mv=pmd_mv,
        soc_mv=soc_mv,
        trefp_s=trefp,
        safety_margin_mv=safety_margin_mv,
    )


def _ceil_to_step(value: float, step: float) -> float:
    """Round up to the next multiple of ``step``."""
    import math
    return math.ceil(value / step - 1e-9) * step
