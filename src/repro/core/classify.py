"""Run-log classification: the framework's parsing phase.

During execution the harness stores, per run: the exit status, the ECC
event counts harvested from SLIMpro, and whether the program's output
matched the golden reference. Parsing folds those raw signals into the
paper's effect taxonomy (correct / CE / UE / SDC / crash / hang) and
aggregates them per campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.cpu.outcomes import RunOutcome
from repro.errors import CampaignError


@dataclass(frozen=True)
class RunLog:
    """Raw signals stored for one run during the execution phase."""

    exited_cleanly: bool
    responded_to_watchdog: bool
    corrected_errors: int
    uncorrected_errors: int
    output_matches_golden: Optional[bool]  # None when the run never produced output

    def __post_init__(self) -> None:
        if self.corrected_errors < 0 or self.uncorrected_errors < 0:
            raise CampaignError("error counts cannot be negative")


def classify_run_log(log: RunLog) -> RunOutcome:
    """Fold raw run signals into the paper's outcome taxonomy.

    Precedence follows severity: a machine that stopped responding is a
    hang regardless of logged errors; a dirty exit is a crash; detected
    uncorrectable errors outrank silent corruption, which is only
    declared when the output check fails with no detected UE (the
    definition of SDC -- corruption that *escaped* detection).
    """
    if not log.responded_to_watchdog:
        return RunOutcome.HANG
    if not log.exited_cleanly:
        return RunOutcome.CRASH
    if log.uncorrected_errors > 0:
        return RunOutcome.UNCORRECTED_ERROR
    if log.output_matches_golden is False:
        return RunOutcome.SDC
    if log.corrected_errors > 0:
        return RunOutcome.CORRECTED_ERROR
    return RunOutcome.CORRECT


@dataclass
class OutcomeCounts:
    """Aggregated outcome histogram for a set of runs."""

    counts: Dict[RunOutcome, int] = field(default_factory=dict)

    def add(self, outcome: RunOutcome) -> None:
        self.counts[outcome] = self.counts.get(outcome, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def of(self, outcome: RunOutcome) -> int:
        return self.counts.get(outcome, 0)

    @property
    def all_safe(self) -> bool:
        """True when every run kept the system up and data intact."""
        return all(outcome.is_safe for outcome in self.counts)

    @property
    def failure_rate(self) -> float:
        if self.total == 0:
            return 0.0
        failures = sum(n for o, n in self.counts.items() if o.is_failure)
        return failures / self.total

    def as_row(self) -> Dict[str, int]:
        """Flat dict suitable for the CSV result store."""
        return {outcome.value: self.of(outcome) for outcome in RunOutcome}


def summarize(outcomes: Iterable[RunOutcome]) -> OutcomeCounts:
    """Histogram a stream of outcomes."""
    counts = OutcomeCounts()
    for outcome in outcomes:
        counts.add(outcome)
    return counts
