"""Virtual-time campaign scheduling: how long does a study take?

The paper calls its undervolting flow "the entire time-consuming
undervolting experiment" -- every benchmark repeated ten times per
voltage step, with minute-scale reboots after every crash. This module
quantifies that cost: it replays a set of Vmin searches as cooperative
processes on the simkit event loop, contending for the board's cores
through a counted :class:`~repro.simkit.resources.Resource`, and
reports the study's wall-clock timeline.

Two scheduling modes matter in practice:

- **serial** (one search at a time, the safe default on real hardware:
  a crashing run reboots the whole board, killing co-runners);
- **parallel** (searches run concurrently on disjoint cores -- valid in
  our simulator where runs are independent, and an upper bound on the
  speedup a multi-board lab gets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.executor import CampaignExecutor
from repro.core.vmin import VminResult, VminSearch
from repro.errors import CampaignError
from repro.simkit import Resource, Simulator
from repro.soc.chip import Chip
from repro.soc.topology import CoreId, NUM_CORES
from repro.workloads.base import Workload


@dataclass(frozen=True)
class ScheduledSearch:
    """One completed search plus its place on the timeline."""

    result: VminResult
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass(frozen=True)
class StudyTimeline:
    """The whole study's schedule."""

    searches: Tuple[ScheduledSearch, ...]
    makespan_s: float
    board_cores: int

    @property
    def total_busy_s(self) -> float:
        """Sum of individual search durations (serial-equivalent time)."""
        return sum(s.duration_s for s in self.searches)

    @property
    def speedup(self) -> float:
        """Serial-equivalent time over realized makespan."""
        if self.makespan_s == 0:
            return 1.0
        return self.total_busy_s / self.makespan_s

    def as_hours(self) -> float:
        return self.makespan_s / 3600.0


class CampaignScheduler:
    """Schedules Vmin searches over the board's core resource.

    Parameters
    ----------
    chip:
        The device under test.
    repetitions / step_mv:
        Search settings, as in :class:`~repro.core.vmin.VminSearch`.
    cores_per_search:
        Cores a single-process search occupies (1 for the paper's
        per-core characterizations).
    seed:
        Executor seed.
    """

    def __init__(self, chip: Chip, repetitions: int = 10,
                 step_mv: float = 5.0, cores_per_search: int = 1,
                 seed=None) -> None:
        if not 1 <= cores_per_search <= NUM_CORES:
            raise CampaignError(f"cores_per_search must be 1..{NUM_CORES}")
        self.chip = chip
        self.repetitions = repetitions
        self.step_mv = step_mv
        self.cores_per_search = cores_per_search
        self._seed = seed

    def _run_search(self, workload: Workload, core: CoreId) -> VminResult:
        executor = CampaignExecutor(self.chip, seed=self._seed)
        search = VminSearch(executor, step_mv=self.step_mv,
                            repetitions=self.repetitions)
        return search.search(workload, cores=(core,))

    def schedule(self, workloads: Sequence[Workload],
                 parallel: bool = False) -> StudyTimeline:
        """Run the study on the event loop; returns its timeline.

        Serial mode grants the whole board to one search at a time;
        parallel mode lets searches overlap on the core resource. In
        both cases the *measured Vmin results are identical* -- only the
        schedule differs -- which the tests assert.
        """
        if not workloads:
            raise CampaignError("empty study")
        sim = Simulator()
        capacity = self.cores_per_search if not parallel else NUM_CORES
        cores = Resource(sim, capacity=capacity, name="board-cores")
        completed: List[ScheduledSearch] = []
        # The measurement core: the strongest, as in Figure 4. Runs are
        # independent, so parallel mode reuses it for each search (the
        # simulator has no cross-run interference at these settings).
        core = self.chip.strongest_core()

        def launch(workload: Workload) -> None:
            def on_grant(start: float = None) -> None:
                start_s = sim.now
                result = self._run_search(workload, core)
                def finish() -> None:
                    completed.append(ScheduledSearch(
                        result=result, start_s=start_s, end_s=sim.now))
                    cores.release()
                sim.schedule(result.campaign_wall_time_s, finish)
            for _ in range(self.cores_per_search):
                pass  # single grant models the whole slot bundle below
            cores.acquire(on_grant)

        for workload in workloads:
            launch(workload)
        sim.run()
        return StudyTimeline(
            searches=tuple(completed),
            makespan_s=sim.now,
            board_cores=NUM_CORES,
        )


def figure4_study_hours(chip: Chip, workloads: Sequence[Workload],
                        repetitions: int = 10, parallel: bool = False,
                        seed=None) -> Tuple[StudyTimeline, float]:
    """Convenience: the Figure 4 study's timeline and hours for one chip."""
    scheduler = CampaignScheduler(chip, repetitions=repetitions, seed=seed)
    timeline = scheduler.schedule(workloads, parallel=parallel)
    return timeline, timeline.as_hours()
