#!/usr/bin/env python3
"""Per-part binning: why one safe point cannot serve every chip.

The paper's Figure 7 message in deployable form: the same virus-derived
characterization run over a *population* of parts (not just the three
reference chips) sorts them into undervolting bins. Typical parts hide
tens of millivolts of guardband; slow-corner parts must stay at nominal.

Run:  python examples/chip_binning.py
"""

from repro.core.executor import CampaignExecutor
from repro.core.margins import guardband_report
from repro.core.safepoints import select_safe_points
from repro.core.vmin import VminSearch
from repro.experiments.fig6_virus_vs_nas import virus_as_workload
from repro.soc.chip import Chip
from repro.soc.corners import ProcessCorner
from repro.viruses.didt import evolve_didt_virus
from repro.workloads.spec import spec_suite

SEED = 1
PARTS_PER_CORNER = 3


def characterize(chip: Chip, virus_workload) -> float:
    """Return the part's selected PMD set-point (mV)."""
    search = VminSearch(CampaignExecutor(chip, seed=SEED), repetitions=5)
    weakest = chip.weakest_cores(1)[0]
    robust = chip.strongest_core()
    workload_results = search.search_suite(spec_suite()[:4], cores=(weakest,))
    virus_result = search.search(virus_workload, cores=(robust,))
    report = guardband_report(chip.serial, chip.corner.value,
                              workload_results, virus_result)
    return select_safe_points(report, dram_all_corrected=True).pmd_mv


def main() -> None:
    virus = evolve_didt_virus(seed=SEED, generations=15, population=24)
    virus_workload = virus_as_workload(virus)
    print(f"characterization stimulus: {virus.summary()}\n")
    print(f"{'part':10s} {'corner':7s} {'safe PMD mV':>12s} "
          f"{'shaved mV':>10s} {'power saved':>12s}")
    bins = {}
    for corner in ProcessCorner:
        for index in range(PARTS_PER_CORNER):
            chip = Chip(corner, seed=SEED + index,
                        serial=f"{corner.value}-{index:02d}")
            point_mv = characterize(chip, virus_workload)
            shaved = 980.0 - point_mv
            power = (1.0 - (point_mv / 980.0) ** 2) * 100.0
            bins.setdefault(corner.value, []).append(point_mv)
            print(f"{chip.serial:10s} {corner.value:7s} {point_mv:12.0f} "
                  f"{shaved:10.0f} {power:11.1f}%")
    print("\nbin summary (set-point range per corner):")
    for corner, points in bins.items():
        print(f"  {corner}: {min(points):.0f}-{max(points):.0f} mV")
    print("\nTSS parts sit at/near the manufacturer nominal -- exactly the "
          "paper's conclusion that the slow corner should not be undervolted.")


if __name__ == "__main__":
    main()
