#!/usr/bin/env python3
"""Adaptive voltage governor: the paper's Section IV.D vision, running.

The paper closes with its deployment goal — a module that suggests
optimistic safe operating points to the Linux governor, built on the
workload-Vmin predictor, the chip's intrinsic (idle) Vmin, and the
history of observed voltage droops. This example runs that loop:

1. train the predictor on a characterization campaign,
2. govern a 200-quantum mixed schedule, printing how the rail tracks
   each workload phase,
3. compare the governed energy against the static worst-case-safe rail,
4. show the droop-history failure model converging.

Run:  python examples/adaptive_governor.py
"""

from repro.core.failure_prob import idle_vmin_mv
from repro.core.governor import VoltageGovernor
from repro.core.predictor import VminPredictor
from repro.soc.corners import NOMINAL_PMD_MV, ProcessCorner
from repro.soc.xgene2 import build_reference_chips
from repro.workloads.spec import spec_suite

SEED = 1


def main() -> None:
    chip = build_reference_chips(seed=SEED)[ProcessCorner.TTT]
    core = chip.weakest_cores(1)[0]
    suite = spec_suite()

    print(f"part {chip.serial}: intrinsic (idle) Vmin on {core}: "
          f"{idle_vmin_mv(chip, core):.1f} mV\n")

    predictor = VminPredictor()
    report = predictor.fit(
        suite, [chip.vmin_mv(core, w.resonant_swing) for w in suite])
    print(f"predictor trained: RMSE {report.train_rmse_mv:.2f} mV, "
          f"conservative bias {report.conservative_bias_mv:.2f} mV\n")

    governor = VoltageGovernor(chip, predictor, core=core, seed=SEED)
    schedule = (suite * 20)[:200]
    print("first quanta (rail tracks the workload phase):")
    for workload in schedule[:12]:
        record = governor.run_quantum(workload)
        print(f"  {record.workload:10s} rail {record.programmed_mv:5.0f} mV "
              f"(true Vmin {record.true_vmin_mv:6.1f}, "
              f"margin {record.margin_mv:5.1f} mV) -> {record.outcome}")
    for workload in schedule[12:]:
        governor.run_quantum(workload)

    result = governor.report
    print(f"\ngoverned {len(result.quanta)} quanta: "
          f"{result.unsafe_quanta} unsafe, {result.backoffs} backoffs")
    print(f"mean rail {result.mean_voltage_mv:.1f} mV, "
          f"minimum margin {result.min_margin_mv:.1f} mV")
    print(f"mean dynamic-power savings {result.mean_power_savings_pct:.1f}% "
          f"vs the {NOMINAL_PMD_MV:.0f} mV nominal")

    # Static comparator: one rail safe for the worst workload.
    worst_vmin = max(chip.vmin_mv(core, w.resonant_swing) for w in suite)
    static_rail = (int(worst_vmin / 5) + 1) * 5 + 5
    static_savings = (1.0 - (static_rail / NOMINAL_PMD_MV) ** 2) * 100.0
    print(f"\nstatic worst-case rail would be {static_rail} mV "
          f"({static_savings:.1f}% savings) -- the governor recovers "
          f"{result.mean_power_savings_pct - static_savings:+.1f} points "
          "by tracking workload phases")

    print("\nper-workload droop failure models after the run:")
    for name in ("mcf", "milc"):
        model = governor._model_for(name)
        if not model.fitted:
            continue
        fit = model.fit
        budget_v = model.voltage_for_budget(governor.failure_budget)
        print(f"  {name:6s} Gumbel(mu={fit.mu_mv:5.1f} mV, "
              f"beta={fit.beta_mv:4.2f} mV, {fit.samples} epochs) -> "
              f"budget voltage {budget_v:.1f} mV")


if __name__ == "__main__":
    main()
