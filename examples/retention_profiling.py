#!/usr/bin/env python3
"""Retention profiling in depth: VRT cells, scrub passes, safe TREFP.

Goes past the headline Table I numbers into the profiling craft the
paper builds on (its reference [19]):

1. multi-round profiling of one bank -- watch the unique-location curve
   climb as variable-retention-time (VRT) cells flip into their weak
   state across rounds, the reason single-pass profiles are unsafe;
2. patrol scrubbing -- how many CE->UE escalations a mid-window scrub
   pass would prevent at an overheated operating point;
3. the inverse question a deployer asks: given a temperature and a BER
   budget, what is the longest safe refresh period?

Run:  python examples/retention_profiling.py
"""

from repro.dram.cells import WeakCellMap
from repro.dram.errors_model import BitErrorModel, PatternKind
from repro.dram.geometry import BankAddress
from repro.dram.profiling import profile_bank
from repro.dram.retention import RetentionModel
from repro.dram.scrubber import PatrolScrubber, pairup_probability
from repro.units import NOMINAL_REFRESH_S, RELAXED_REFRESH_S

SEED = 7


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Multi-round profiling with VRT
    # ------------------------------------------------------------------
    bank = WeakCellMap(BankAddress(0, 0), seed=SEED)
    campaign = profile_bank(bank, RELAXED_REFRESH_S, 60.0, rounds=10,
                            seed=SEED)
    print(f"profiling device0/bank0 at (2.283 s, 60 degC): "
          f"{campaign.stable_population} stable weak cells + "
          f"{campaign.vrt_population} VRT cells")
    print("round  observed  new  cumulative-unique")
    for record in campaign.rounds:
        print(f"{record.round_index:5d} {record.failing_locations:9d} "
              f"{record.new_locations:4d} {record.cumulative_unique:18d}")
    print(f"a single pass covers only "
          f"{campaign.single_round_coverage * 100:.1f}% of the final "
          f"unique set -- the union over rounds is what Table I reports\n")

    # ------------------------------------------------------------------
    # 2. Patrol scrubbing at an overheated point
    # ------------------------------------------------------------------
    hot_banks = [WeakCellMap(BankAddress(0, bank), seed=SEED,
                             profile_interval_s=4.0, profile_temp_c=72.0)
                 for bank in range(8)]
    weak_bits = hot_banks[0].failing_count(
        4.0, 70.0, coupling=hot_banks[0].retention.params.coupling_random)
    words = hot_banks[0].geometry.bits_per_bank // 64
    print(f"overheated point (4 s, 70 degC): ~{weak_bits} weak bits/bank")
    for passes in (0, 1, 3):
        analytic = pairup_probability(weak_bits, words, scrub_passes=passes)
        print(f"  ensemble P(a bank holds a paired word) with {passes} "
              f"scrub passes: {analytic:.3e}")
    vulnerable = prevented = 0
    for hot_bank in hot_banks:
        report = PatrolScrubber(hot_bank, 4.0, 70.0, passes=1,
                                seed=SEED).run(12)
        vulnerable += report.total_vulnerable_words
        prevented += report.total_prevented
    print(f"  simulated 8 banks x 12 windows, 1 pass: {vulnerable} "
          f"vulnerable word-windows, {prevented} escalations prevented "
          f"({0 if vulnerable == 0 else prevented * 100 // vulnerable}%) -- "
          "individual banks' fixed cell draws decide who pairs at all\n")

    # ------------------------------------------------------------------
    # 3. Longest safe refresh period per temperature
    # ------------------------------------------------------------------
    retention = RetentionModel()
    ber_model = BitErrorModel(retention)
    budget = ber_model.pattern_ber(PatternKind.RANDOM, RELAXED_REFRESH_S, 60.0)
    print(f"BER budget = the paper's operating point "
          f"(random pattern, 2.283 s @ 60 degC): {budget:.2e}")
    print("temp degC  longest safe TREFP  relaxation vs 64 ms")
    for temp in (45.0, 50.0, 55.0, 60.0, 65.0, 70.0):
        interval = retention.interval_for_target_ber(
            budget / 0.5, temp, retention.params.coupling_random)
        print(f"{temp:9.0f} {interval:17.3f}s {interval / NOMINAL_REFRESH_S:12.0f}x")
    print("\ncooler DIMMs buy dramatically longer refresh periods -- the "
          "coupling between the thermal testbed and the refresh knob")


if __name__ == "__main__":
    main()
