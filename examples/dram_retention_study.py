#!/usr/bin/env python3
"""DRAM retention study on the thermal testbed.

Reproduces the paper's Section IV.C workflow end to end:

1. bring the PID-controlled thermal testbed to 50 degC, then 60 degC,
2. at each setpoint, profile weak cells across the 72-device population
   under the 35x relaxed refresh period (Table I),
3. scrub a sample of banks through the real (72,64) SECDED code and
   report CE/UE counts via SLIMpro,
4. estimate workload BER for the Rodinia suite (Figure 8a) and the
   refresh power savings each workload unlocks (Figure 8b).

Run:  python examples/dram_retention_study.py
"""

from repro.dram.cells import DramDevicePopulation
from repro.dram.controller import MemoryControlUnit
from repro.dram.errors_model import BitErrorModel, PatternKind
from repro.dram.power import DramPowerModel
from repro.soc.slimpro import SLIMpro
from repro.thermal.testbed import ThermalTestbed, ZoneConfig
from repro.units import RELAXED_REFRESH_S
from repro.workloads.rodinia import rodinia_suite

SEED = 1


def regulate(testbed: ThermalTestbed, temp_c: float) -> None:
    testbed.set_setpoint(0, temp_c)
    report = testbed.run(900.0)[0]
    status = "ok" if report.within_one_degree else "OUT OF SPEC"
    print(f"  regulated to {report.final_c:6.2f} degC "
          f"(setpoint {temp_c}, steady error "
          f"{report.max_abs_error_steady_c:.2f} degC, {status})")


def main() -> None:
    slimpro = SLIMpro()
    slimpro.boot()
    population = DramDevicePopulation(seed=SEED)
    mcu = MemoryControlUnit(0, slimpro, trefp_s=RELAXED_REFRESH_S)
    testbed = ThermalTestbed([ZoneConfig(setpoint_c=50.0)], seed=SEED)

    print(f"refresh period: {RELAXED_REFRESH_S} s "
          f"(35x the nominal 64 ms)\n")
    for temp in (50.0, 60.0):
        print(f"--- {temp:.0f} degC ---")
        regulate(testbed, temp)
        bank_totals = [0] * 8
        for device in range(population.geometry.num_devices):
            for bank, count in enumerate(
                    population.device_unique_locations(
                        device, RELAXED_REFRESH_S, temp)):
                bank_totals[bank] += count
        print(f"  weak cells per bank index (72 devices): {bank_totals}")

        scrub = mcu.scrub_bank(population.bank_map(0, 0), temp,
                               PatternKind.RANDOM, now_s=float(temp))
        print(f"  ECC scrub of device0/bank0: {scrub.raw_bit_errors} raw bit "
              f"errors -> {scrub.corrected_words} corrected, "
              f"{scrub.residual_word_errors} residual")
    print(f"\nSLIMpro ECC log: {slimpro.correctable_count()} CE, "
          f"{slimpro.uncorrectable_count()} UE")

    print("\n--- workload view at 60 degC ---")
    ber_model = BitErrorModel()
    power_model = DramPowerModel()
    random_ber = ber_model.pattern_ber(PatternKind.RANDOM,
                                       RELAXED_REFRESH_S, 60.0)
    print(f"  random DPBench BER: {random_ber:.2e} (the worst pattern)")
    for workload in rodinia_suite():
        dram = workload.dram
        ber = ber_model.workload_ber(RELAXED_REFRESH_S, 60.0,
                                     dram.data_entropy, dram.hot_row_fraction)
        savings = power_model.relaxation_savings(dram.bandwidth_gbs,
                                                 RELAXED_REFRESH_S) * 100
        print(f"  {workload.name:9s} BER {ber:.2e} "
              f"({ber / random_ber:4.2f}x of virus), "
              f"refresh-relaxation power savings {savings:4.1f}%")


if __name__ == "__main__":
    main()
