#!/usr/bin/env python3
"""End-to-end guardband exploitation with the Jammer detector (Figure 9).

The paper's closing demonstration: run a realistic edge application --
a multi-instance wireless-spectrum jammer (DoS) detector -- at the safe
operating points discovered by characterization, and account the server
power saved per domain without violating the detector's QoS.

Run:  python examples/jammer_energy_savings.py
"""

from repro.analysis.server_power import server_power_report
from repro.core.safepoints import SafeOperatingPoint
from repro.dram.power import DramPowerModel
from repro.soc.corners import ProcessCorner
from repro.soc.domains import DomainName
from repro.soc.xgene2 import build_platform
from repro.units import NOMINAL_REFRESH_S, RELAXED_REFRESH_S
from repro.workloads.jammer import JAMMER_WORKLOAD, JammerDetector

SEED = 1


def main() -> None:
    platform = build_platform(ProcessCorner.TTT, seed=SEED)
    point = SafeOperatingPoint(pmd_mv=930.0, soc_mv=920.0,
                               trefp_s=RELAXED_REFRESH_S,
                               safety_margin_mv=10.0)

    print("programming the safe operating point through SLIMpro:")
    applied_pmd = platform.slimpro.set_domain_voltage(DomainName.PMD,
                                                      point.pmd_mv)
    applied_soc = platform.slimpro.set_domain_voltage(DomainName.SOC,
                                                      point.soc_mv)
    platform.slimpro.set_refresh_period(point.trefp_s)
    print(f"  PMD {applied_pmd:.0f} mV (nominal 980), "
          f"SoC {applied_soc:.0f} mV (nominal 950), "
          f"TREFP {point.trefp_s:.3f} s (nominal {NOMINAL_REFRESH_S:.3f})\n")

    print("running 4 parallel Jammer-detector instances...")
    detector = JammerDetector(instances=4, seed=SEED)
    run = detector.run(duration_s=2.0, burst_rate_hz=2.0,
                       processing_slowdown=1.0)
    print(f"  bursts injected {run.bursts_injected}, detected "
          f"{run.bursts_detected} (rate {run.detection_rate * 100:.0f}%), "
          f"false alarms {run.false_alarms}")
    print(f"  max detection latency {run.max_latency_s * 1000:.1f} ms, "
          f"QoS {'met' if run.qos_met else 'VIOLATED'}\n")

    report = server_power_report(platform, JAMMER_WORKLOAD, point,
                                 dram_model=DramPowerModel())
    print("per-domain power accounting:")
    print(f"  {'domain':8s} {'nominal W':>10s} {'scaled W':>9s} {'savings':>8s}")
    for domain, nominal, scaled, savings in report.rows():
        print(f"  {domain:8s} {nominal:10.2f} {scaled:9.2f} {savings:7.1f}%")
    print(f"\n  total: {report.total_nominal_w:.1f} W -> "
          f"{report.total_scaled_w:.1f} W "
          f"({report.total_savings_pct:.1f}% saved) -- paper: "
          f"31.1 W -> 24.8 W (20.2%)")

    print("\nwhat frequency scaling would have cost instead "
          "(the reason the paper undervolts at constant frequency):")
    slow = detector.run(duration_s=2.0, burst_rate_hz=2.0,
                        processing_slowdown=40.0)
    print(f"  at a 40x frame-processing slowdown the detector "
          f"{'still meets' if slow.qos_met else 'violates'} QoS "
          f"(detected {slow.bursts_detected}/{slow.bursts_injected})")


if __name__ == "__main__":
    main()
