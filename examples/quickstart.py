#!/usr/bin/env python3
"""Quickstart: characterize one chip and find a safe operating point.

This walks the library's central loop in ~40 lines:

1. build a simulated X-Gene2 part (the TTT typical-corner chip),
2. run the descending-ladder Vmin search for a few SPEC workloads,
3. evolve the worst-case dI/dt virus and measure its Vmin,
4. fold everything into a guardband report and pick the safe point.

Run:  python examples/quickstart.py
"""

from repro import (
    CampaignExecutor,
    ProcessCorner,
    VminSearch,
    build_reference_chips,
    evolve_didt_virus,
    guardband_report,
    select_safe_points,
    spec_suite,
)
from repro.experiments.fig6_virus_vs_nas import virus_as_workload


def main() -> None:
    chip = build_reference_chips(seed=1)[ProcessCorner.TTT]
    print(f"device under test: {chip.serial} ({chip.corner})")

    executor = CampaignExecutor(chip, seed=1)
    search = VminSearch(executor, repetitions=10)

    # 1. Per-workload Vmin on the weakest core (binding for a chip rail).
    weakest = chip.weakest_cores(1)[0]
    print(f"\nVmin search on the weakest core ({weakest}):")
    results = search.search_suite(spec_suite(), cores=(weakest,))
    for result in results:
        print(f"  {result.workload:10s} safe Vmin {result.safe_vmin_mv:5.0f} mV "
              f"(guardband {result.guardband_mv:4.0f} mV, "
              f"power -{result.power_reduction_fraction * 100:4.1f}%)")

    # 2. The worst-case stimulus: an EM-guided dI/dt virus.
    virus = evolve_didt_virus(seed=1, generations=20, population=28)
    print(f"\nevolved virus: {virus.summary()}")
    robust = chip.strongest_core()
    virus_result = search.search(virus_as_workload(virus), cores=(robust,))
    print(f"virus Vmin on the most robust core: {virus_result.safe_vmin_mv:.0f} mV "
          f"(margin {virus_result.guardband_mv:.0f} mV below nominal)")

    # 3. Safe operating point.
    report = guardband_report(chip.serial, chip.corner.value,
                              results, virus_result)
    point = select_safe_points(report, dram_all_corrected=True)
    print(f"\nselected safe operating point:")
    print(f"  PMD rail {point.pmd_mv:.0f} mV "
          f"(shaving {point.pmd_undervolt_mv:.0f} mV of guardband)")
    print(f"  SoC rail {point.soc_mv:.0f} mV")
    print(f"  refresh period {point.trefp_s:.3f} s "
          f"({point.refresh_relaxation:.1f}x relaxed)")

    # 4. Campaign bookkeeping: the framework's final CSV.
    print(f"\ncharacterization rows logged: {len(executor.store)}")
    print("first CSV lines:")
    for line in executor.store.to_csv_text().splitlines()[:4]:
        print("  " + line)


if __name__ == "__main__":
    main()
