#!/usr/bin/env python3
"""Watch the EM-guided genetic search craft a dI/dt virus.

Shows the methodology of paper Section III.C / IV.B step by step:

1. evolve instruction loops with EM amplitude as fitness, printing the
   best individual per generation,
2. validate the EM proxy: compare the virus's realized PDN droop and
   normalized resonant swing against hand-written comparison loops,
3. confirm with (simulated) Vmin testing that the virus out-stresses
   every conventional workload -- the paper's Figure 6 argument.

Run:  python examples/virus_evolution.py
"""

from repro.core.executor import CampaignExecutor
from repro.core.vmin import VminSearch
from repro.cpu.isa import InstrClass
from repro.cpu.kernels import InstructionLoop, square_wave_loop
from repro.experiments.fig6_virus_vs_nas import virus_as_workload
from repro.pdn.droop import analyze_loop
from repro.pdn.rlc import PdnModel
from repro.soc.corners import ProcessCorner
from repro.soc.xgene2 import build_reference_chips
from repro.viruses.didt import DidtSearch
from repro.viruses.genetic import GaConfig
from repro.workloads.nas import nas_suite

SEED = 1


def main() -> None:
    pdn = PdnModel()
    print(f"PDN first-order resonance: "
          f"{pdn.params.resonant_freq_hz / 1e6:.1f} MHz "
          f"(Q = {pdn.params.quality_factor:.1f})")
    res_cycles = 2.4e9 / pdn.params.resonant_freq_hz
    print(f"-> at 2.4 GHz one resonance period is {res_cycles:.0f} cycles\n")

    print("generation | best EM amplitude | best loop")
    search = DidtSearch(config=GaConfig(population_size=32, generations=20),
                        seed=SEED)
    ga = __import__("repro.viruses.genetic", fromlist=["GeneticAlgorithm"])
    engine = ga.GeneticAlgorithm(
        search.em_fitness, config=search.config, seed=SEED)
    result = engine.run(progress=lambda gen, best: print(
        f"{gen:10d} | {best.fitness:17.4f} | {best.loop.describe()[:48]}"))
    virus, _ = search.run()
    print(f"\nafter local polish: {virus.summary()}\n")

    print("EM-proxy validation against hand-written loops:")
    comparisons = {
        "evolved virus": virus.loop,
        "resonant square wave": square_wave_loop(
            InstrClass.SIMD, InstrClass.NOP, int(res_cycles / 2)),
        "off-resonance square": square_wave_loop(
            InstrClass.SIMD, InstrClass.NOP, int(res_cycles / 8)),
        "flat integer loop": InstructionLoop.of([InstrClass.INT_ALU] * 32),
    }
    for name, loop in comparisons.items():
        analysis = analyze_loop(loop)
        em = search.em_fitness(loop)
        print(f"  {name:22s} swing {analysis.resonant_swing:5.3f}  "
              f"droop {analysis.droop_mv:6.1f} mV  em {em:6.4f}")

    print("\nVmin validation on the TTT part (the Figure 6 check):")
    chip = build_reference_chips(seed=SEED)[ProcessCorner.TTT]
    vmin_search = VminSearch(CampaignExecutor(chip, seed=SEED), repetitions=5)
    core = chip.strongest_core()
    virus_vmin = vmin_search.search(virus_as_workload(virus), cores=(core,))
    print(f"  {'em-virus':10s} Vmin {virus_vmin.safe_vmin_mv:5.0f} mV")
    worst_nas = 0.0
    for workload in nas_suite():
        result = vmin_search.search(workload, cores=(core,))
        worst_nas = max(worst_nas, result.safe_vmin_mv)
        print(f"  {workload.name:10s} Vmin {result.safe_vmin_mv:5.0f} mV")
    print(f"\nvirus exceeds the worst NAS workload by "
          f"{virus_vmin.safe_vmin_mv - worst_nas:.0f} mV -- "
          "EM amplitude is a faithful voltage-noise proxy")


if __name__ == "__main__":
    main()
