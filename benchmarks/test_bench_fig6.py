"""Bench: Figure 6 -- Vmin of the EM dI/dt virus vs NAS workloads."""

from conftest import emit

from repro.experiments.fig6_virus_vs_nas import run_figure6


def test_bench_figure6(benchmark, bench_seed):
    result = benchmark.pedantic(
        run_figure6,
        kwargs={"seed": bench_seed, "repetitions": 10,
                "generations": 25, "population": 32},
        rounds=1, iterations=1,
    )
    emit("Figure 6: EM virus vs NAS benchmark Vmin (TTT)", result.format())
    assert result.virus_is_highest
    assert result.gap_mv >= 30.0
    assert abs(result.virus_vmin_mv - 920.0) <= 5.0
