"""Bench: Figure 7 -- inter-chip process variation under the virus."""

from conftest import emit

from repro.experiments.fig7_interchip import PAPER_MARGINS_MV, run_figure7


def test_bench_figure7(benchmark, bench_seed):
    result = benchmark.pedantic(
        run_figure7,
        kwargs={"seed": bench_seed, "repetitions": 10,
                "generations": 25, "population": 32},
        rounds=1, iterations=1,
    )
    emit("Figure 7: virus margins across TTT/TFF/TSS", result.format())
    assert result.ordering_matches_paper
    assert abs(result.margin_mv("TTT") - PAPER_MARGINS_MV["TTT"]) <= 5.0
    assert abs(result.margin_mv("TFF") - PAPER_MARGINS_MV["TFF"]) <= 5.0
    assert result.tss_margin_negligible
