"""Benchmark harness configuration.

Each bench regenerates one of the paper's tables/figures, prints the
same rows/series the paper reports (with the paper's values alongside),
and times the core computation with pytest-benchmark. Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import json
import os

import pytest

BENCH_SEED = 1


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return BENCH_SEED


def emit(title: str, body: str) -> None:
    """Print a bench's regenerated figure under a clear banner."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")


def emit_json(name: str, payload: dict) -> str:
    """Persist machine-readable bench results as ``BENCH_<name>.json``.

    Written to ``$BENCH_JSON_DIR`` (default: the repo root), so CI can
    collect every ``BENCH_*.json`` as one artifact. Returns the path.
    """
    default_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    out_dir = os.environ.get("BENCH_JSON_DIR", default_dir)
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
