"""Benchmark harness configuration.

Each bench regenerates one of the paper's tables/figures, prints the
same rows/series the paper reports (with the paper's values alongside),
and times the core computation with pytest-benchmark. Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

BENCH_SEED = 1


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return BENCH_SEED


def emit(title: str, body: str) -> None:
    """Print a bench's regenerated figure under a clear banner."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
