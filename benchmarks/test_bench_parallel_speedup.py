"""Bench: batched + process-parallel engine vs the scalar seed path.

Two head-to-head timings, both against faithful reimplementations of the
pre-batching execution style:

- Figure 4 ladder: a per-repetition scalar ``observe_run`` loop with
  row-at-a-time result appends (how the executor sampled before the
  batched ``observe_run_block`` path) vs ``run_figure4(jobs=4)``;
- Table I profiling: the per-element inverse-CDF population sampler plus
  the cell-at-a-time ECC scrub (materialized ``WeakCell`` objects, one
  full SECDED encode/decode per corrupted word) vs ``run_table1(jobs=4)``
  with the vectorized scrub.

Each test asserts the engine is at least 2x faster than the scalar
reference, the PR's headline acceptance criterion.
"""

import time
from collections import defaultdict

import numpy as np

from conftest import emit

from repro.core.classify import RunLog, classify_run_log
from repro.core.executor import NOMINAL_RUNTIME_S
from repro.core.results import ResultRow, ResultStore
from repro.core.watchdog import Watchdog
from repro.cpu.outcomes import RunOutcome
from repro.dram.controller import WORD_DATA_BITS, ScrubResult
from repro.dram.ecc import DecodeStatus, SecdedCode
from repro.dram.errors_model import PatternKind
from repro.dram.retention import (
    _cached_acceleration,
    _cached_fail_probability,
    _normal_icdf,
)
from repro.experiments.fig4_spec_vmin import run_figure4
from repro.experiments.table1_weak_cells import run_table1
from repro.rand import substream
from repro.soc.chip import Chip
from repro.soc.xgene2 import build_reference_chips
from repro.workloads.spec import spec_suite

LADDER_REPETITIONS = 300
JOBS = 4
#: The experiment's two setpoints plus hotter ones (still inside the
#: 70 degC profiling condition), so the fixed pool fork/IPC overhead
#: amortizes over enough per-worker profiling work.
TABLE1_TEMPS_C = (50.0, 55.0, 60.0, 65.0)


def _scalar_vmin_ladder(chip: Chip, workload, core, seed: int,
                        repetitions: int, store: ResultStore) -> float:
    """Seed-style descending ladder: one scalar draw per repetition.

    A faithful transcription of the pre-batching executor loop: one
    ``observe_run`` draw per repetition, a ``RunLog`` parsed through
    ``classify_run_log``, an unconditional watchdog pass, and a
    row-at-a-time store append.
    """
    watchdog = Watchdog()
    voltage = 980.0
    safe_vmin = voltage
    while voltage >= 700.0 - 1e-9:
        rng = substream(seed, f"ref-{chip.serial}/{workload.name}@{voltage!r}")
        all_safe = True
        for repetition in range(repetitions):
            worst = chip.observe_run(
                core, workload.resonant_swing, voltage, 2.4,
                sdc_bias=workload.cpu.sdc_bias, rng=rng)
            ce_count = int(worst is RunOutcome.CORRECTED_ERROR)
            ue_count = int(worst is RunOutcome.UNCORRECTED_ERROR)
            log = RunLog(
                exited_cleanly=worst not in (RunOutcome.CRASH, RunOutcome.HANG),
                responded_to_watchdog=worst is not RunOutcome.HANG,
                corrected_errors=ce_count,
                uncorrected_errors=ue_count,
                output_matches_golden=None
                if worst in (RunOutcome.CRASH, RunOutcome.HANG)
                else worst is not RunOutcome.SDC,
            )
            classified = classify_run_log(log)
            supervised = watchdog.supervise(
                classified, NOMINAL_RUNTIME_S,
                description=f"{workload.name}@{voltage:.0f}mV[{core.linear}]")
            all_safe = all_safe and classified.is_safe
            store.append(ResultRow(
                run_id=0, benchmark=workload.name, suite=workload.cpu.suite,
                voltage_mv=voltage, freq_ghz=2.4, cores=str(core.linear),
                repetition=repetition, outcome=classified.value,
                verdict=supervised.verdict.value, corrected_errors=ce_count,
                uncorrected_errors=ue_count,
                wall_time_s=supervised.wall_time_s,
            ))
        if all_safe:
            safe_vmin = voltage
        else:
            break
        voltage -= 5.0
    return safe_vmin


def _scalar_figure4(seed: int, repetitions: int) -> dict:
    """The whole Figure 4 grid through the scalar reference path."""
    vmin = {}
    store = ResultStore()
    for corner, chip in build_reference_chips(seed=seed).items():
        core = chip.strongest_core()
        vmin[corner.value] = {
            workload.name: _scalar_vmin_ladder(
                chip, workload, core, seed, repetitions, store)
            for workload in spec_suite()
        }
    return vmin


def test_bench_figure4_engine_speedup(bench_seed):
    start = time.perf_counter()
    reference_vmin = _scalar_figure4(bench_seed, LADDER_REPETITIONS)
    reference_s = time.perf_counter() - start

    start = time.perf_counter()
    result = run_figure4(seed=bench_seed, repetitions=LADDER_REPETITIONS,
                         jobs=JOBS)
    engine_s = time.perf_counter() - start

    speedup = reference_s / engine_s
    emit("Parallel-engine bench: Figure 4 ladder",
         f"scalar reference: {reference_s:.2f}s\n"
         f"batched engine (jobs={JOBS}): {engine_s:.2f}s\n"
         f"speedup: {speedup:.1f}x (required >= 2x)")
    # Same physics: the scalar ladder lands on the same safe Vmin table.
    assert result.vmin_mv == reference_vmin
    assert speedup >= 2.0


def _loop_icdf_array(p):
    """The seed's per-element inverse-CDF (pre-vectorization)."""
    flat = np.atleast_1d(np.asarray(p, dtype=np.float64))
    return np.array([_normal_icdf(float(value)) for value in flat])


def _scalar_scrub_bank(self, weak_map, temp_c, pattern=PatternKind.RANDOM,
                       now_s=0.0):
    """The seed's cell-at-a-time scrub (pre-vectorization).

    Materializes one ``WeakCell`` per failing bit, groups words in a
    Python dict, and runs the full SECDED encode + decode on every
    corrupted word -- including the ~all-singles common case the
    vectorized path settles from the truth table.
    """
    retention = weak_map.retention.params
    if pattern is PatternKind.ALL_ZEROS:
        stress_ones, coupling = False, 1.0
    elif pattern is PatternKind.ALL_ONES:
        stress_ones, coupling = True, 1.0
    elif pattern is PatternKind.CHECKERBOARD:
        stress_ones, coupling = None, retention.coupling_checker
    else:
        stress_ones, coupling = None, retention.coupling_random
    failing = weak_map.failing_cells(
        self.trefp_s, temp_c, stored_ones=stress_ones, coupling=coupling)
    if pattern in (PatternKind.CHECKERBOARD, PatternKind.RANDOM):
        failing = [c for c in failing
                   if (c.col + (0 if pattern is PatternKind.CHECKERBOARD
                                else c.row)) % 2 == (0 if c.is_true_cell else 1)]
    by_word = defaultdict(list)
    for cell in failing:
        by_word[(cell.row, cell.col // WORD_DATA_BITS)].append(
            cell.col % WORD_DATA_BITS)
    code = SecdedCode()
    corrected = uncorrectable = miscorrected = 0
    for (_row, _word), bits in sorted(by_word.items()):
        corrupted = code.flip_bits(code.encode(0), sorted(set(bits)))
        result = code.decode_with_truth(corrupted, 0)
        if result.status is DecodeStatus.CORRECTED:
            corrected += 1
        elif result.status is DecodeStatus.DETECTED_UNCORRECTABLE:
            uncorrectable += 1
        elif result.status is DecodeStatus.MISCORRECTED:
            miscorrected += 1
    return ScrubResult(
        raw_bit_errors=len(failing), corrected_words=corrected,
        uncorrectable_words=uncorrectable, miscorrected_words=miscorrected,
        words_scanned=len(by_word))


def test_bench_table1_sampling_speedup(bench_seed, monkeypatch):
    import gc

    import repro.dram.cells as cells
    import repro.dram.controller as controller

    # Drop garbage left by earlier benches: the engine timing forks a
    # worker pool, and copy-on-write faults against a bloated parent
    # heap would bill the pool for another test's allocations.
    gc.collect()

    # Reference: per-element tail sampling, cell-at-a-time scrub, cold
    # analytic caches.
    monkeypatch.setattr(cells, "_normal_icdf_array", _loop_icdf_array)
    monkeypatch.setattr(controller.MemoryControlUnit, "scrub_bank",
                        _scalar_scrub_bank)
    _cached_acceleration.cache_clear()
    _cached_fail_probability.cache_clear()
    start = time.perf_counter()
    reference = run_table1(seed=bench_seed, temps_c=TABLE1_TEMPS_C,
                           regulate=False, jobs=1)
    reference_s = time.perf_counter() - start
    monkeypatch.undo()

    start = time.perf_counter()
    result = run_table1(seed=bench_seed, temps_c=TABLE1_TEMPS_C,
                        regulate=False, jobs=JOBS)
    engine_s = time.perf_counter() - start

    speedup = reference_s / engine_s
    emit("Parallel-engine bench: Table I weak-cell profiling",
         f"scalar reference: {reference_s:.2f}s\n"
         f"vectorized engine (jobs={JOBS}): {engine_s:.2f}s\n"
         f"speedup: {speedup:.1f}x (required >= 2x)")
    # Same populations up to <=1 ulp inverse-CDF differences (a borderline
    # cell may flip either side of the failure threshold).
    for temp in result.counts:
        for ours, ref in zip(result.counts[temp], reference.counts[temp]):
            assert abs(ours - ref) <= max(2.0, 0.01 * ref)
    assert speedup >= 2.0
