"""Extension bench: single- vs multi-process Vmin characterization.

The paper characterized workloads "in both single-process and
multi-process setups"; this bench regenerates that comparison and the
decorrelation effect the Figure 5 analysis builds on.
"""

from conftest import emit

from repro.experiments.multiprocess_vmin import run_multiprocess_study


def test_bench_multiprocess_vmin(benchmark, bench_seed):
    result = benchmark.pedantic(
        run_multiprocess_study, kwargs={"seed": bench_seed, "repetitions": 5},
        rounds=1, iterations=1,
    )
    emit("Extension: single-process vs multi-process Vmin (TTT)",
         result.format())
    assert result.all_multi_above_single
    assert result.decorrelation_gain_mv > 0.0
