"""Bench: Figure 9 -- end-to-end Jammer run at the safe operating point."""

from conftest import emit

from repro.experiments.fig9_jammer import (
    PAPER_DOMAIN_SAVINGS_PCT,
    PAPER_TOTAL_SAVINGS_PCT,
    run_figure9,
)


def test_bench_figure9(benchmark, bench_seed):
    result = benchmark.pedantic(
        run_figure9, kwargs={"seed": bench_seed, "repetitions": 10},
        rounds=1, iterations=1,
    )
    emit("Figure 9: server power per domain, nominal vs undervolted Jammer",
         result.format())
    assert result.qos_met
    assert result.point.pmd_mv == 930.0
    assert result.point.soc_mv == 920.0
    assert abs(result.power.total_savings_pct - PAPER_TOTAL_SAVINGS_PCT) < 1.5
    for domain, target in PAPER_DOMAIN_SAVINGS_PCT.items():
        assert abs(result.power.domain_savings_pct(domain) - target) < 2.0
