"""Extension bench: the testbed cost of the Figure 4 study.

The paper describes "running the entire time-consuming undervolting
experiment ten times for each benchmark". This bench replays that study
on the virtual-time scheduler and prints the wall-clock bill per chip --
serial (the safe policy on one board) versus fully parallel (the
multi-board upper bound).
"""

from conftest import emit

from repro.core.timeline import CampaignScheduler
from repro.soc.corners import ProcessCorner
from repro.soc.xgene2 import build_reference_chips
from repro.workloads.spec import spec_suite


def test_bench_study_cost(benchmark, bench_seed):
    chips = build_reference_chips(seed=bench_seed)
    suite = spec_suite()

    def run():
        rows = []
        for corner, chip in chips.items():
            scheduler = CampaignScheduler(chip, repetitions=10,
                                          seed=bench_seed)
            serial = scheduler.schedule(suite, parallel=False)
            parallel = scheduler.schedule(suite, parallel=True)
            rows.append((corner.value, serial.as_hours(),
                         parallel.as_hours(), parallel.speedup))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'chip':>5s} {'serial hours':>13s} {'parallel hours':>15s} "
             f"{'speedup':>8s}"]
    total_serial = 0.0
    for corner, serial_h, parallel_h, speedup in rows:
        total_serial += serial_h
        lines.append(f"{corner:>5s} {serial_h:13.1f} {parallel_h:15.1f} "
                     f"{speedup:8.1f}x")
    lines.append(f"full 3-chip Figure 4 study, serial: "
                 f"{total_serial:.0f} testbed hours "
                 f"({total_serial / 24:.1f} days)")
    emit("Extension: wall-clock cost of the Figure 4 undervolting study",
         "\n".join(lines))
    for corner, serial_h, parallel_h, speedup in rows:
        assert serial_h > 20.0, corner       # genuinely time-consuming
        assert speedup > 2.0, corner
