"""Ablation bench: adaptive governor vs static safe operating point.

The paper's Section IV.D argues a workload-tracking predictor beats one
static undervolted rail. This bench quantifies the gap on a mixed SPEC
schedule: the static rail must satisfy the worst workload forever; the
governor re-targets every quantum.
"""

from conftest import emit

from repro.core.governor import VoltageGovernor
from repro.core.predictor import VminPredictor
from repro.soc.corners import NOMINAL_PMD_MV, ProcessCorner
from repro.soc.xgene2 import build_reference_chips
from repro.workloads.spec import spec_suite


def test_bench_governor_vs_static(benchmark, bench_seed):
    chip = build_reference_chips(seed=bench_seed)[ProcessCorner.TTT]
    core = chip.weakest_cores(1)[0]
    suite = spec_suite()
    predictor = VminPredictor()
    predictor.fit(suite, [chip.vmin_mv(core, w.resonant_swing) for w in suite])
    schedule = (suite * 20)[:200]

    def governed_run():
        governor = VoltageGovernor(chip, predictor, core=core, seed=bench_seed)
        return governor.run_schedule(schedule)

    report = benchmark.pedantic(governed_run, rounds=1, iterations=1)

    worst_vmin = max(chip.vmin_mv(core, w.resonant_swing) for w in suite)
    static_rail = (int(worst_vmin / 5) + 1) * 5 + 5
    static_savings = (1.0 - (static_rail / NOMINAL_PMD_MV) ** 2) * 100.0
    body = "\n".join([
        f"schedule: {len(schedule)} quanta over {len(suite)} SPEC programs",
        f"static worst-case rail : {static_rail:5.0f} mV "
        f"-> {static_savings:5.1f}% savings",
        f"adaptive governor      : {report.mean_voltage_mv:5.1f} mV mean "
        f"-> {report.mean_power_savings_pct:5.1f}% savings",
        f"governor advantage     : "
        f"{report.mean_power_savings_pct - static_savings:+5.1f} points",
        f"safety: {report.unsafe_quanta} unsafe quanta, minimum margin "
        f"{report.min_margin_mv:.1f} mV, {report.backoffs} backoffs",
    ])
    emit("Ablation: adaptive governor vs static safe point", body)
    assert report.unsafe_quanta == 0
    assert report.mean_power_savings_pct > static_savings
