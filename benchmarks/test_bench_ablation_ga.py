"""Ablation + throughput benches for the EM-guided virus search.

DESIGN.md calls out the GA as a design choice worth ablating: the paper
uses a genetic algorithm to craft the EM-maximizing loop; how much does
the structured search buy over drawing random loops with the same
evaluation budget?

On top of the ablation, ``test_bench_ga_throughput`` measures what the
batched fitness pipeline buys in evaluations per second against a
faithful transcription of the pre-batching serial path (Python-loop
waveform synthesis, per-sample IIR smoothing, one full spectral chain
per EM read). Results land in ``BENCH_ga_throughput.json`` for CI.

``REPRO_BENCH_QUICK=1`` shrinks both benches to a CI smoke size.
"""

import os
import time

import numpy as np

from conftest import emit, emit_json

from repro.core.parallel import parallel_map
from repro.cpu.execution import SMOOTHING_CYCLES, STATIC_CURRENT
from repro.cpu.isa import spec_of
from repro.rand import substream
from repro.viruses.didt import (
    FITNESS_WINDOW_CYCLES,
    DidtSearch,
    didt_search_unit,
    random_search_unit,
)
from repro.viruses.genetic import GaConfig, GeneticAlgorithm

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def _ablation_arm(task):
    """Picklable bench work unit: one ablation arm (GA or random)."""
    kind, seed, generations, population, budget = task
    if kind == "ga":
        return didt_search_unit((seed, generations, population, 3))[0]
    return random_search_unit((seed, budget))


def test_bench_ga_vs_random(benchmark, bench_seed):
    generations, population = (8, 16) if QUICK else (25, 32)
    config = GaConfig(population_size=population, generations=generations)
    # The GA's evaluation count is deterministic from its config, so the
    # equal-budget arms are independent and shard through the same
    # process-parallel engine as the figure drivers.
    budget = (config.population_size
              + config.generations * (config.population_size - config.elite_count))
    arms = [("ga", bench_seed, generations, population, budget),
            ("random", bench_seed, generations, population, budget)]

    def run_both():
        ga, random_ = parallel_map(_ablation_arm, arms, jobs=2)
        return ga, random_

    ga_virus, random_virus = benchmark.pedantic(run_both, rounds=1, iterations=1)
    body = "\n".join([
        f"evaluation budget: {budget} loop evaluations each",
        f"GA+polish : swing={ga_virus.resonant_swing:.3f} "
        f"droop={ga_virus.droop_mv:.1f} mV em={ga_virus.em_amplitude:.4f}",
        f"random    : swing={random_virus.resonant_swing:.3f} "
        f"droop={random_virus.droop_mv:.1f} mV em={random_virus.em_amplitude:.4f}",
        f"GA advantage: {ga_virus.resonant_swing - random_virus.resonant_swing:+.3f} "
        "normalized swing",
    ])
    emit("Ablation: GA-evolved virus vs random search (equal budget)", body)
    emit_json("ga_ablation", {
        "bench": "ga_vs_random",
        "budget_evaluations": budget,
        "ga_swing": ga_virus.resonant_swing,
        "random_swing": random_virus.resonant_swing,
        "quick": QUICK,
    })
    assert ga_virus.resonant_swing >= random_virus.resonant_swing
    assert ga_virus.resonant_swing > 0.95


def _reference_fitness(loop, pdn, rng, repeats=3, freq_ghz=2.4,
                       noise_floor=0.01, bandwidth_hz=30e6,
                       current_scale_a=10.0):
    """The pre-batching serial fitness path, transcribed faithfully.

    Python-loop waveform synthesis, a per-sample one-pole IIR, and one
    complete spectral chain (rfft + frequency grid + impedance curve +
    receiver window) per EM read -- exactly what one GA evaluation cost
    before the batched pipeline.
    """
    window_cycles = FITNESS_WINDOW_CYCLES
    cycles = []
    while len(cycles) < window_cycles:
        for klass in loop.body:
            spec = spec_of(klass)
            occupancy = max(1, round(spec.cycles))
            level = STATIC_CURRENT + (1.0 - STATIC_CURRENT) * spec.current
            cycles.extend([level] * occupancy)
            if len(cycles) >= window_cycles:
                break
    raw = np.asarray(cycles[:window_cycles])
    alpha = 1.0 / (1.0 + SMOOTHING_CYCLES)
    waveform = np.empty_like(raw, dtype=float)
    state = float(raw[0])
    for i, sample in enumerate(raw):
        state += alpha * (float(sample) - state)
        waveform[i] = state
    n = window_cycles
    reads = []
    for _ in range(repeats):
        current = (waveform - np.mean(waveform)) * current_scale_a
        spectrum = np.abs(np.fft.rfft(current)) / n * 2.0
        freqs = np.fft.rfftfreq(n, d=1.0 / (freq_ghz * 1e9))
        f_res = pdn.params.resonant_freq_hz
        window = np.exp(-0.5 * ((freqs - f_res) / bandwidth_hz) ** 2)
        radiated = pdn.impedance_ohm(freqs) * spectrum * window
        amplitude = float(radiated[int(np.argmax(radiated))]) / (
            pdn.peak_impedance_ohm() * current_scale_a)
        reads.append(max(0.0, amplitude + rng.normal(0.0, noise_floor)))
    return float(np.mean(reads))


def test_bench_ga_throughput(benchmark, bench_seed):
    cohort = 32 if QUICK else 128
    search = DidtSearch(seed=bench_seed)
    ga = GeneticAlgorithm(search.fitness, seed=substream(bench_seed, "bench-pop"))
    loops = [ga._random_loop() for _ in range(cohort)]

    rng = substream(bench_seed, "bench-ref-noise")
    t0 = time.perf_counter()
    reference = [_reference_fitness(loop, search.pdn, rng) for loop in loops]
    serial_s = time.perf_counter() - t0

    def run_batched():
        # A fresh search each round: the memo cache must not let later
        # rounds ride on earlier rounds' work.
        fresh = DidtSearch(seed=bench_seed)
        return fresh.fitness.batch(loops)

    benchmark.pedantic(run_batched, rounds=3, iterations=1)
    # Self-timed rounds: the numbers must exist even under
    # --benchmark-disable (the CI smoke path), where benchmark.stats
    # is unavailable.
    timings = []
    for _ in range(3):
        t0 = time.perf_counter()
        batched = run_batched()
        timings.append(time.perf_counter() - t0)
    batched_s = min(timings)
    speedup = serial_s / batched_s
    serial_rate = cohort / serial_s
    batched_rate = cohort / batched_s
    # Same deterministic amplitudes modulo the noise protocol: the two
    # paths draw different noise streams, so compare at noise scale.
    assert np.allclose(sorted(reference), sorted(batched), atol=0.06)
    body = "\n".join([
        f"cohort: {cohort} loop evaluations, window {FITNESS_WINDOW_CYCLES} cycles",
        f"serial reference : {serial_s * 1e3:8.1f} ms  ({serial_rate:8.0f} eval/s)",
        f"batched pipeline : {batched_s * 1e3:8.1f} ms  ({batched_rate:8.0f} eval/s)",
        f"speedup: {speedup:.1f}x (target >= 5x)",
    ])
    emit("Throughput: batched EM-fitness pipeline vs serial reference", body)
    emit_json("ga_throughput", {
        "bench": "ga_throughput",
        "batch_size": cohort,
        "window_cycles": FITNESS_WINDOW_CYCLES,
        "serial_eval_per_s": serial_rate,
        "batched_eval_per_s": batched_rate,
        "speedup_vs_serial": speedup,
        "quick": QUICK,
    })
    assert speedup >= 5.0
