"""Ablation bench: GA (+ polish) vs random search for dI/dt viruses.

DESIGN.md calls out the GA as a design choice worth ablating: the paper
uses a genetic algorithm to craft the EM-maximizing loop; how much does
the structured search buy over drawing random loops with the same
evaluation budget?
"""

from conftest import emit

from repro.viruses.didt import DidtSearch, random_search_baseline
from repro.viruses.genetic import GaConfig


def test_bench_ga_vs_random(benchmark, bench_seed):
    config = GaConfig(population_size=32, generations=25)

    def run_both():
        ga_virus, ga_result = DidtSearch(config=config, seed=bench_seed).run()
        budget = ga_result.evaluations
        random_virus = random_search_baseline(seed=bench_seed,
                                              evaluations=budget)
        return ga_virus, random_virus, budget

    ga_virus, random_virus, budget = benchmark.pedantic(
        run_both, rounds=1, iterations=1)
    body = "\n".join([
        f"evaluation budget: {budget} loop evaluations each",
        f"GA+polish : swing={ga_virus.resonant_swing:.3f} "
        f"droop={ga_virus.droop_mv:.1f} mV em={ga_virus.em_amplitude:.4f}",
        f"random    : swing={random_virus.resonant_swing:.3f} "
        f"droop={random_virus.droop_mv:.1f} mV em={random_virus.em_amplitude:.4f}",
        f"GA advantage: {ga_virus.resonant_swing - random_virus.resonant_swing:+.3f} "
        "normalized swing",
    ])
    emit("Ablation: GA-evolved virus vs random search (equal budget)", body)
    assert ga_virus.resonant_swing >= random_virus.resonant_swing
    assert ga_virus.resonant_swing > 0.95
