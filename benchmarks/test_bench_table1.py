"""Bench: Table I -- weak-cell counts per bank at 50/60 degC."""

from conftest import emit

from repro.experiments.table1_weak_cells import (
    PAPER_COUNTS,
    PAPER_SPREAD_PCT,
    run_table1,
)


def test_bench_table1(benchmark, bench_seed):
    result = benchmark.pedantic(
        run_table1, kwargs={"seed": bench_seed, "regulate": True},
        rounds=1, iterations=1,
    )
    body = result.format() + "\n\npaper rows for reference:\n"
    for temp, counts in sorted(PAPER_COUNTS.items()):
        body += f"  {temp:.0f} degC: " + " ".join(str(c) for c in counts) + "\n"
    emit("Table I: unique error locations per DRAM bank (35x refresh)", body)
    assert result.regulation_ok
    assert result.all_errors_corrected
    for temp, paper_row in PAPER_COUNTS.items():
        paper_mean = sum(paper_row) / len(paper_row)
        measured_mean = sum(result.counts[temp]) / len(result.counts[temp])
        assert abs(measured_mean - paper_mean) / paper_mean < 0.3
    assert result.measured_spread_pct(50.0) > result.measured_spread_pct(60.0)
