"""Bench: Figure 5 -- power/performance tradeoff ladder."""

from conftest import emit

from repro.experiments.fig5_tradeoff import (
    PAPER_BEST_ENERGY_SAVINGS_PCT,
    PAPER_FULL_PERF_SAVINGS_PCT,
    PAPER_LADDER,
    run_figure5,
)


def test_bench_figure5(benchmark, bench_seed):
    result = benchmark.pedantic(
        run_figure5, kwargs={"seed": bench_seed, "repetitions": 10},
        rounds=1, iterations=1,
    )
    body = result.format() + "\n\npaper ladder for reference:\n" + "\n".join(
        f"  perf {perf:5.1f}%  rail {rail:3.0f} mV  power {power:4.1f}%"
        for perf, rail, power in PAPER_LADDER
    )
    emit("Figure 5: 8-benchmark mix power/performance tradeoff (TTT)", body)
    assert abs(result.full_perf_savings_pct - PAPER_FULL_PERF_SAVINGS_PCT) < 0.5
    assert abs(result.best_energy_savings_pct - PAPER_BEST_ENERGY_SAVINGS_PCT) < 0.5
    assert result.predictor_is_safe
