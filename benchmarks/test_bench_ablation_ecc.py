"""Ablation bench: ECC strength at the relaxed refresh period.

The paper's DRAM result hinges on SECDED correcting every manifested
error at <= 60 degC. This ablation quantifies what weaker protection
would have meant: SECDED vs parity-only detection vs no protection, over
the same weak-cell populations at both study temperatures and at an
overheated 70 degC point (where even SECDED starts to leak).
"""

from collections import defaultdict

from conftest import emit

from repro.dram.cells import DramDevicePopulation
from repro.dram.controller import WORD_DATA_BITS
from repro.units import RELAXED_REFRESH_S


def word_error_histogram(population, temp_c, devices=24):
    """words with k failing bits, aggregated over sampled devices."""
    histogram = defaultdict(int)
    for device in range(devices):
        for bank in range(8):
            weak_map = population.bank_map(device, bank)
            by_word = defaultdict(int)
            for cell in weak_map.failing_cells(
                    RELAXED_REFRESH_S, temp_c,
                    coupling=weak_map.retention.params.coupling_random):
                by_word[(cell.row, cell.col // WORD_DATA_BITS)] += 1
            for count in by_word.values():
                histogram[count] += 1
    return dict(histogram)


def protection_outcomes(histogram):
    """(corrected, detected-only, silent) word counts per scheme."""
    secded = {"corrected": histogram.get(1, 0),
              "detected": histogram.get(2, 0),
              "silent": sum(v for k, v in histogram.items() if k > 2)}
    parity = {"corrected": 0,
              "detected": sum(v for k, v in histogram.items() if k % 2 == 1),
              "silent": sum(v for k, v in histogram.items() if k % 2 == 0)}
    none = {"corrected": 0, "detected": 0, "silent": sum(histogram.values())}
    return {"secded": secded, "parity": parity, "none": none}


def test_bench_ecc_strength_ablation(benchmark, bench_seed):
    population = DramDevicePopulation(seed=bench_seed,
                                      profile_interval_s=4.0,
                                      profile_temp_c=72.0)

    def run():
        return {temp: word_error_histogram(population, temp)
                for temp in (50.0, 60.0, 70.0)}

    histograms = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    for temp, histogram in sorted(histograms.items()):
        lines.append(f"{temp:.0f} degC word-error multiplicities: {histogram}")
        for scheme, outcome in protection_outcomes(histogram).items():
            lines.append(f"    {scheme:7s}: corrected={outcome['corrected']} "
                         f"detected={outcome['detected']} "
                         f"silent={outcome['silent']}")
    emit("Ablation: ECC strength at 35x relaxed refresh", "\n".join(lines))
    # At <= 60 degC SECDED corrects everything (the paper's claim)...
    for temp in (50.0, 60.0):
        outcomes = protection_outcomes(histograms[temp])["secded"]
        assert outcomes["detected"] == 0 and outcomes["silent"] == 0
    # ...while parity-only would leave every error uncorrected.
    parity_60 = protection_outcomes(histograms[60.0])["parity"]
    assert parity_60["corrected"] == 0
    assert parity_60["detected"] > 0
