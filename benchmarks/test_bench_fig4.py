"""Bench: Figure 4 -- SPEC CPU2006 Vmin on the three sigma chips."""

from conftest import emit

from repro.experiments.fig4_spec_vmin import PAPER_RANGES_MV, run_figure4


def test_bench_figure4(benchmark, bench_seed):
    result = benchmark.pedantic(
        run_figure4, kwargs={"seed": bench_seed, "repetitions": 10},
        rounds=1, iterations=1,
    )
    emit("Figure 4: Vmin of 10 SPEC2006 programs on TTT/TFF/TSS",
         result.format())
    for corner, (lo, hi) in PAPER_RANGES_MV.items():
        measured_lo, measured_hi = result.measured_range_mv(corner)
        assert abs(measured_lo - lo) <= 5.0
        assert abs(measured_hi - hi) <= 5.0
    assert result.ordering_consistent_across_chips()
