"""Extension bench: weak-cell counts and ECC viability vs temperature.

Extends Table I into a sweep: the paper measured 50 and 60 degC and
stated ECC holds "when the DRAM temperature does not exceed 60 degC".
This bench regenerates the full curve (45..70 degC) on the thermal
testbed, showing the exponential count growth and locating the
temperature where the first uncorrectable (double-bit) words appear --
the boundary behind the paper's <= 60 degC qualifier.
"""

from conftest import emit

from repro.dram.cells import DramDevicePopulation
from repro.dram.controller import MemoryControlUnit
from repro.thermal.testbed import ThermalTestbed, ZoneConfig
from repro.units import RELAXED_REFRESH_S

TEMPS_C = (45.0, 50.0, 55.0, 60.0, 65.0, 70.0)
SAMPLE_DEVICES = 24


def test_bench_temperature_sweep(benchmark, bench_seed):
    population = DramDevicePopulation(seed=bench_seed,
                                      profile_interval_s=4.0,
                                      profile_temp_c=72.0)
    mcu = MemoryControlUnit(0, trefp_s=RELAXED_REFRESH_S)
    testbed = ThermalTestbed([ZoneConfig(setpoint_c=TEMPS_C[0])],
                             seed=bench_seed)

    def sweep():
        rows = []
        for temp in TEMPS_C:
            testbed.set_setpoint(0, temp)
            regulation = testbed.run(600.0)[0]
            total = 0
            ue = 0
            corrected = 0
            for device in range(SAMPLE_DEVICES):
                for bank in range(8):
                    weak_map = population.bank_map(device, bank)
                    total += weak_map.unique_locations(RELAXED_REFRESH_S, temp)
                    scrub = mcu.scrub_bank(weak_map, temp)
                    corrected += scrub.corrected_words
                    ue += scrub.residual_word_errors
            rows.append((temp, regulation.final_c, total, corrected, ue))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{SAMPLE_DEVICES} devices sampled, TREFP = {RELAXED_REFRESH_S}s",
             f"{'set degC':>9s} {'held degC':>10s} {'weak cells':>11s} "
             f"{'CE words':>9s} {'UE+silent':>10s}"]
    for temp, held, total, corrected, ue in rows:
        lines.append(f"{temp:9.0f} {held:10.2f} {total:11d} "
                     f"{corrected:9d} {ue:10d}")
    first_ue = next((t for t, _, _, _, ue in rows if ue > 0), None)
    lines.append(
        f"first residual (beyond-SECDED) errors at: "
        f"{'none in sweep' if first_ue is None else f'{first_ue:.0f} degC'}"
    )
    emit("Extension: weak cells and ECC viability vs temperature", "\n".join(lines))

    counts = [total for _, _, total, _, _ in rows]
    assert counts == sorted(counts)              # exponential growth
    at = {temp: ue for temp, _, _, _, ue in rows}
    assert at[50.0] == 0 and at[60.0] == 0       # the paper's safe band
