"""Bench: Section IV.C -- stencil access-pattern scheduling.

Also doubles as the inherent-refresh ablation: comparing schedules with
identical work but different access intervals isolates exactly the
access-driven-refresh mechanism.
"""

from conftest import emit

from repro.experiments.stencil_scheduling import run_stencil_study


def test_bench_stencil_scheduling(benchmark, bench_seed):
    result = benchmark.pedantic(
        run_stencil_study, kwargs={"seed": bench_seed}, rounds=3, iterations=1,
    )
    emit("Stencil access-pattern scheduling (paper Sec. IV.C / ref [12])",
         result.format())
    assert result.natural_coverage < 0.1
    assert result.blocked_coverage > 0.9
    assert result.blocked_relative_ber < 0.1
