"""Extension bench: retention under a per-DIMM temperature gradient.

The paper's rig heats each DIMM rank independently; this bench exploits
that capability beyond the paper's uniform 50/60 degC settings. The
eight zones are regulated to a 49..63 degC staircase and the weak-cell
census is taken with every device evaluated at its *own* zone's
temperature -- demonstrating the Arrhenius amplification within a single
board and validating the zone-to-device binding chain end to end.
"""

from conftest import emit

from repro.dram.cells import DramDevicePopulation
from repro.thermal.binding import ThermalDramBinding
from repro.thermal.testbed import ThermalTestbed, ZoneConfig
from repro.units import RELAXED_REFRESH_S


def test_bench_thermal_gradient(benchmark, bench_seed):
    population = DramDevicePopulation(seed=bench_seed)
    configs = [ZoneConfig(setpoint_c=49.0 + 2.0 * zone) for zone in range(8)]
    testbed = ThermalTestbed(configs, seed=bench_seed)

    def run():
        reports = testbed.run(1200.0)
        binding = ThermalDramBinding(population, testbed)
        return reports, binding.gradient_summary(RELAXED_REFRESH_S)

    reports, summary = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'zone':>4s} {'set degC':>9s} {'held degC':>10s} "
             f"{'devices':>8s} {'mean weak cells':>16s}"]
    for zone, entry in summary.items():
        lines.append(f"{zone:4d} {configs[zone].setpoint_c:9.0f} "
                     f"{entry['temperature_c']:10.2f} "
                     f"{entry['devices']:8.0f} "
                     f"{entry['mean_weak_cells']:16.1f}")
    emit("Extension: weak-cell census under a per-zone temperature gradient",
         "\n".join(lines))

    assert all(r.within_one_degree for r in reports)
    counts = [entry["mean_weak_cells"] for entry in summary.values()]
    # 14 degC of gradient spans roughly 2^(14/10) ~ 2.6x of retention
    # acceleration -> a clear >3x weak-cell spread across zones.
    assert max(counts) > 3.0 * min(counts)
