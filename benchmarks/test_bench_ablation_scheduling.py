"""Ablation bench: Vmin-aware scheduling vs naive placement.

The paper suggests the predictor "can also assist task scheduling in
conjunction to frequency scaling". This bench quantifies the claim: the
same task set placed by a Vmin-aware scheduler (strong cores first,
weakest PMDs downclocked) against a naive scheduler (linear core order,
index-order downclocking), compared on rail voltage and relative power.
"""

from conftest import emit

from repro.analysis.scheduling import scheduling_advantage
from repro.soc.corners import ProcessCorner
from repro.soc.xgene2 import build_reference_chips
from repro.workloads.spec import spec_suite, spec_workload


def test_bench_scheduling_ablation(benchmark, bench_seed):
    chip = build_reference_chips(seed=bench_seed)[ProcessCorner.TTT]
    partial = [spec_workload(n) for n in ("milc", "bwaves", "mcf", "gcc")]
    full = spec_suite()[:8]

    def run():
        return {
            "partial load (4 tasks)": scheduling_advantage(chip, partial),
            "full load + 2 slow PMDs": scheduling_advantage(
                chip, full, slow_pmd_count=2),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = []
    for label, (aware, naive, advantage) in results.items():
        lines.append(f"{label}:")
        lines.append(f"  naive : rail {naive.rail_mv:5.0f} mV, power "
                     f"{naive.relative_power * 100:5.1f}% "
                     f"(perf {naive.performance_fraction * 100:.1f}%)")
        lines.append(f"  aware : rail {aware.rail_mv:5.0f} mV, power "
                     f"{aware.relative_power * 100:5.1f}% "
                     f"(perf {aware.performance_fraction * 100:.1f}%)")
        lines.append(f"  advantage: {advantage:+.0f} mV of rail voltage")
    emit("Ablation: Vmin-aware scheduling vs naive placement", "\n".join(lines))

    for label, (aware, naive, advantage) in results.items():
        assert advantage > 0.0, label
        assert aware.performance_fraction == naive.performance_fraction, label
