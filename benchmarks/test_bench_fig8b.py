"""Bench: Figure 8b -- DRAM power savings from 35x relaxed refresh."""

from conftest import emit

from repro.experiments.fig8b_refresh_power import PAPER_SAVINGS_PCT, run_figure8b


def test_bench_figure8b(benchmark, bench_seed):
    result = benchmark.pedantic(
        run_figure8b, kwargs={"seed": bench_seed}, rounds=3, iterations=1,
    )
    emit("Figure 8b: DRAM power savings at 35x relaxed refresh", result.format())
    name_max, val_max = result.max_savings
    name_min, val_min = result.min_savings
    assert name_max == "nw" and abs(val_max - PAPER_SAVINGS_PCT["nw"]) < 0.5
    assert name_min == "kmeans" and abs(val_min - PAPER_SAVINGS_PCT["kmeans"]) < 0.5
