"""Bench: Figure 8a -- BER of DPBenches vs Rodinia workloads."""

from conftest import emit

from repro.experiments.fig8a_ber import PAPER_MAX_WORKLOAD_VARIATION, run_figure8a


def test_bench_figure8a(benchmark, bench_seed):
    result = benchmark.pedantic(
        run_figure8a, kwargs={"seed": bench_seed}, rounds=3, iterations=1,
    )
    emit("Figure 8a: BER for DPBenches and Rodinia workloads", result.format())
    assert result.random_is_worst_pattern
    assert result.workloads_below_random_virus
    assert abs(result.workload_variation - PAPER_MAX_WORKLOAD_VARIATION) < 0.6
